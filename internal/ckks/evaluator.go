package ckks

import (
	"context"
	"math"
	"math/big"
	"os"
	"sync"

	"bitpacker/internal/core"
	"bitpacker/internal/engine"
	"bitpacker/internal/fherr"
	"bitpacker/internal/ring"
	"bitpacker/internal/rns"
)

// Evaluator performs homomorphic operations. It is bound to one parameter
// set and one evaluation key set. The level-management backend (classic
// RNS-CKKS vs BitPacker) is selected by the chain's Scheme.
//
// Every operation returns a wrapped error from the internal/fherr
// taxonomy instead of panicking; the Must* wrappers in must.go are the
// only panic boundary. WithContext derives an evaluator whose long
// fan-outs honor cancellation; SetInvariantChecks and SetNoiseGuard
// enable the Validate() entry checks and the noise-budget guard.
type Evaluator struct {
	params *Parameters
	keys   *EvaluationKeySet
	nm     *NoiseModel

	// km, when non-nil, replaces the static key set as the source of
	// switching keys: keys are generated lazily from the secret key,
	// demoted to seed-compressed form or evicted under a byte budget, and
	// pinned for the duration of each keyswitch (see KeyManager).
	km *KeyManager

	// ctx, when non-nil, is checked at operation entry and threaded
	// through engine fan-outs (BSGS transforms, bootstrap).
	ctx context.Context
	// checkInvariants runs Ciphertext.Validate on operands at entry.
	checkInvariants bool
	// guardBits > 0 arms the noise-budget guard: operations whose output
	// retains fewer than guardBits bits of budget fail with
	// fherr.ErrNoiseBudget.
	guardBits float64

	// fused selects the fused-kernel hot paths (MulRelin, Rescale,
	// Adjust, MulRescale, keyswitching, BSGS): per-residue stage chains
	// run as one work item per residue and independent ciphertext ops
	// batch into single fork/joins. The unfused twins are kept as the
	// stage-by-stage baseline; both produce bit-identical results (see
	// DESIGN.md and the engine_diff tests).
	fused bool

	caches *evalCaches
}

// evalCaches holds the read-mostly precomputation caches, shared between
// an evaluator and its WithContext derivatives. The read path takes only
// the shared lock so concurrent evaluations don't serialize on hits.
type evalCaches struct {
	mu        sync.RWMutex
	convCache map[string]*rns.Conv
	sdCache   map[string]*ring.ScaleDownParams
}

// NewEvaluator creates an evaluator. Invariant checking starts enabled
// when the BITPACKER_CHECK_INVARIANTS environment variable is non-empty;
// the fused hot paths start enabled unless BITPACKER_UNFUSED is set.
func NewEvaluator(params *Parameters, keys *EvaluationKeySet) *Evaluator {
	return &Evaluator{
		params:          params,
		keys:            keys,
		nm:              NewNoiseModel(params),
		checkInvariants: os.Getenv("BITPACKER_CHECK_INVARIANTS") != "",
		fused:           os.Getenv("BITPACKER_UNFUSED") == "",
		caches: &evalCaches{
			convCache: map[string]*rns.Conv{},
			sdCache:   map[string]*ring.ScaleDownParams{},
		},
	}
}

// SetKeyManager routes the evaluator's switching-key lookups through a
// budgeted key cache (lazy generation, seed-compressed demotion, LRU
// eviction) instead of the static key set. With a manager installed, any
// Galois element can be served on demand — ErrMissingKey no longer
// occurs for rotations. Results are bit-identical to dense keys.
func (ev *Evaluator) SetKeyManager(km *KeyManager) { ev.km = km }

// KeyManager returns the installed key manager, or nil.
func (ev *Evaluator) KeyManager() *KeyManager { return ev.km }

// SetFused selects between the fused-kernel hot paths (default) and the
// stage-by-stage unfused baseline. Results are bit-identical either way;
// the toggle exists for differential testing and benchmarking.
func (ev *Evaluator) SetFused(on bool) { ev.fused = on }

// Fused reports whether the fused hot paths are active.
func (ev *Evaluator) Fused() bool { return ev.fused }

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

// WithContext returns an evaluator sharing this one's keys and caches
// whose operations observe ctx: once ctx is canceled or expires, entry
// points and engine fan-outs return an error wrapping fherr.ErrCanceled
// within one dispatch quantum, with pooled scratch returned.
func (ev *Evaluator) WithContext(ctx context.Context) *Evaluator {
	ev2 := *ev
	ev2.ctx = ctx
	return &ev2
}

// SetInvariantChecks toggles Ciphertext.Validate at operation entry
// (Config.CheckInvariants on the public API).
func (ev *Evaluator) SetInvariantChecks(on bool) { ev.checkInvariants = on }

// SetNoiseGuard arms the noise-budget guard: operations whose output
// retains fewer than bits bits of budget (log2(scale) - log2(noise
// bound)) fail with an error wrapping fherr.ErrNoiseBudget. bits <= 0
// disarms the guard.
func (ev *Evaluator) SetNoiseGuard(bits float64) { ev.guardBits = bits }

// NoiseBudget returns the remaining noise budget of ct in bits:
// log2(scale) - log2(estimated noise bound). Values near or below zero
// mean decryption yields garbage.
func (ev *Evaluator) NoiseBudget(ct *Ciphertext) float64 {
	return core.RatLog2(ct.Scale) - ct.NoiseBits
}

// begin is the common operation prologue: context check, RRNS
// range-scan with in-place single-residue repair (when the chain carries
// a spare), then (when enabled) operand invariant validation.
func (ev *Evaluator) begin(op string, cts ...*Ciphertext) error {
	if ev.ctx != nil {
		if err := ev.ctx.Err(); err != nil {
			return fherr.Wrap(fherr.ErrCanceled, "ckks: %s (%v)", op, err)
		}
	}
	if ev.rrnsEnabled() {
		if err := ev.scanRepair(op, cts...); err != nil {
			return err
		}
	}
	if ev.checkInvariants {
		for _, ct := range cts {
			if err := ct.Validate(ev.params); err != nil {
				return fherr.Wrap(err, "ckks: %s operand", op)
			}
		}
	}
	return nil
}

// guardNoise enforces the noise-budget guard on an operation output.
func (ev *Evaluator) guardNoise(op string, out *Ciphertext) error {
	if ev.guardBits <= 0 {
		return nil
	}
	budget := ev.NoiseBudget(out)
	if budget >= ev.guardBits {
		return nil
	}
	action := "rescale"
	switch {
	case out.Level == 0:
		action = "bootstrap"
	case scaleAlmostEqual(out.Scale, ev.params.DefaultScale(out.Level)):
		// Scale already canonical: rescaling would shrink the budget
		// further; dropping levels cannot restore precision either.
		action = "adjust or bootstrap"
	}
	return &fherr.NoiseBudgetError{Op: op, BudgetBits: budget, GuardBits: ev.guardBits, Action: action}
}

func moduliKey(a, b []uint64) string {
	s := make([]byte, 0, 8*(len(a)+len(b))+1)
	for _, q := range a {
		for i := 0; i < 8; i++ {
			s = append(s, byte(q>>(8*i)))
		}
	}
	s = append(s, '|')
	for _, q := range b {
		for i := 0; i < 8; i++ {
			s = append(s, byte(q>>(8*i)))
		}
	}
	return string(s)
}

func (ev *Evaluator) conv(src, dst []uint64) *rns.Conv {
	key := moduliKey(src, dst)
	cc := ev.caches
	cc.mu.RLock()
	c, ok := cc.convCache[key]
	cc.mu.RUnlock()
	if ok {
		return c
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.convCache[key]; ok {
		return c
	}
	c = rns.NewConv(src, dst)
	cc.convCache[key] = c
	return c
}

func (ev *Evaluator) scaleDownParams(moduli []uint64, shedPos []int) *ring.ScaleDownParams {
	shed := make([]uint64, len(shedPos))
	for i, pos := range shedPos {
		shed[i] = moduli[pos]
	}
	key := moduliKey(moduli, shed)
	cc := ev.caches
	cc.mu.RLock()
	p, ok := cc.sdCache[key]
	cc.mu.RUnlock()
	if ok {
		return p
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if p, ok := cc.sdCache[key]; ok {
		return p
	}
	p = ring.NewScaleDownParams(moduli, shedPos)
	cc.sdCache[key] = p
	return p
}

// ---------------------------------------------------------------------------
// Linear operations
// ---------------------------------------------------------------------------

func checkCompatible(op string, a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fherr.Wrap(fherr.ErrLevelMismatch, "ckks: %s: level %d vs %d (adjust first)", op, a.Level, b.Level)
	}
	if !scaleAlmostEqual(a.Scale, b.Scale) {
		return fherr.Wrap(fherr.ErrScaleMismatch, "ckks: %s: scale 2^%.3f vs 2^%.3f (adjust first)",
			op, core.RatLog2(a.Scale), core.RatLog2(b.Scale))
	}
	return nil
}

// polyPairLike returns two pooled polynomials shaped like ct's
// components. The caller must fully overwrite both (pair kernels do).
func (ev *Evaluator) polyPairLike(ct *Ciphertext) (*ring.Poly, *ring.Poly) {
	c0 := ev.params.Ctx.GetPoly(ct.C0.Moduli)
	c0.IsNTT = ct.C0.IsNTT
	c1 := ev.params.Ctx.GetPoly(ct.C1.Moduli)
	c1.IsNTT = ct.C1.IsNTT
	return c0, c1
}

// plainOperand returns pt's polynomial in the NTT domain: a zero-copy
// alias when it is already transformed (LinearTransform pre-transforms
// its diagonals), a pooled fused copy+NTT otherwise. release reports
// whether the caller must PutPoly the result.
func (ev *Evaluator) plainOperand(pt *Plaintext) (m *ring.Poly, release bool) {
	if pt.Value.IsNTT {
		return pt.Value, false
	}
	return pt.Value.ScratchCopyNTT(), true
}

// Add returns a + b (same level and scale required; use Adjust otherwise).
// Both component sums run in one fork/join on pooled output rows — no
// intermediate full copy of a.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.begin("Add", a, b); err != nil {
		return nil, err
	}
	if err := checkCompatible("Add", a, b); err != nil {
		return nil, err
	}
	c0, c1 := ev.polyPairLike(a)
	ring.AddPair(c0, a.C0, b.C0, c1, a.C1, b.C1)
	out := newCiphertext(c0, c1, a.Level, new(big.Rat).Set(a.Scale), addNoiseBits(a.NoiseBits, b.NoiseBits))
	ev.spareCombineInto(out, a, b, false)
	return out, nil
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.begin("Sub", a, b); err != nil {
		return nil, err
	}
	if err := checkCompatible("Sub", a, b); err != nil {
		return nil, err
	}
	c0, c1 := ev.polyPairLike(a)
	ring.SubPair(c0, a.C0, b.C0, c1, a.C1, b.C1)
	out := newCiphertext(c0, c1, a.Level, new(big.Rat).Set(a.Scale), addNoiseBits(a.NoiseBits, b.NoiseBits))
	ev.spareCombineInto(out, a, b, true)
	return out, nil
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) (*Ciphertext, error) {
	if err := ev.begin("Neg", a); err != nil {
		return nil, err
	}
	c0, c1 := ev.polyPairLike(a)
	ring.NegPair(c0, a.C0, c1, a.C1)
	out := newCiphertext(c0, c1, a.Level, new(big.Rat).Set(a.Scale), a.NoiseBits)
	ev.spareNegInto(out, a)
	return out, nil
}

// AddPlain returns ct + pt; the plaintext must be encoded at ct's level
// with ct's scale.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.begin("AddPlain", ct); err != nil {
		return nil, err
	}
	if pt.Level != ct.Level {
		return nil, fherr.Wrap(fherr.ErrLevelMismatch, "ckks: AddPlain: plaintext level %d vs ciphertext %d", pt.Level, ct.Level)
	}
	if !scaleAlmostEqual(ct.Scale, pt.Scale) {
		return nil, fherr.Wrap(fherr.ErrScaleMismatch, "ckks: AddPlain: plaintext scale 2^%.3f vs ciphertext 2^%.3f",
			core.RatLog2(pt.Scale), core.RatLog2(ct.Scale))
	}
	m, release := ev.plainOperand(pt)
	c0, c1 := ev.polyPairLike(ct)
	// Only C0 changes; C1 is copied in the same fork/join. The spare
	// channel is not tracked across plaintext addition, so the output
	// starts stale.
	ring.AddCopyPair(c0, ct.C0, m, c1, ct.C1)
	if release {
		ev.params.Ctx.PutPoly(m)
	}
	noise := addNoiseBits(ct.NoiseBits, ev.nm.EncodingBits())
	return newCiphertext(c0, c1, ct.Level, new(big.Rat).Set(ct.Scale), noise), nil
}

// MulPlain returns ct * pt elementwise. The result's scale is the product
// of the scales; rescale afterwards.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.begin("MulPlain", ct); err != nil {
		return nil, err
	}
	if pt.Level != ct.Level {
		return nil, fherr.Wrap(fherr.ErrLevelMismatch, "ckks: MulPlain: plaintext level %d vs ciphertext %d", pt.Level, ct.Level)
	}
	m, release := ev.plainOperand(pt)
	c0, c1 := ev.polyPairLike(ct)
	// Both pointwise products share one fork/join; the NTT products are
	// not tracked by the spare algebra, so the output starts stale.
	ring.MulCoeffsPair(c0, ct.C0, c1, ct.C1, m)
	if release {
		ev.params.Ctx.PutPoly(m)
	}
	scale := new(big.Rat).Mul(ct.Scale, pt.Scale)
	// pt·e_ct dominates; the encoding rounding of pt is amplified by the
	// ciphertext's scale.
	noise := addNoiseBits(
		ct.NoiseBits+core.RatLog2(pt.Scale),
		core.RatLog2(ct.Scale)+ev.nm.EncodingBits(),
	)
	return newCiphertext(c0, c1, ct.Level, scale, noise), nil
}

// MulScalarInt multiplies by a small integer constant (scale unchanged).
func (ev *Evaluator) MulScalarInt(ct *Ciphertext, c int64) (*Ciphertext, error) {
	if err := ev.begin("MulScalarInt", ct); err != nil {
		return nil, err
	}
	c0, c1 := ev.polyPairLike(ct)
	ring.MulScalarBigPair(c0, ct.C0, c1, ct.C1, new(big.Int).SetInt64(c))
	noise := ct.NoiseBits
	if abs := math.Abs(float64(c)); abs > 1 {
		noise = ct.NoiseBits + math.Log2(abs)
	}
	out := newCiphertext(c0, c1, ct.Level, new(big.Rat).Set(ct.Scale), noise)
	ev.spareMulScalarIntInto(out, ct, c)
	return out, nil
}

// ---------------------------------------------------------------------------
// Multiplication and keyswitching
// ---------------------------------------------------------------------------

// MulRelin multiplies two ciphertexts and relinearizes back to degree one.
// The output scale is Scale(a)*Scale(b); callers follow with Rescale.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.begin("MulRelin", a, b); err != nil {
		return nil, err
	}
	if err := checkCompatible("MulRelin", a, b); err != nil {
		return nil, err
	}
	rlk, releaseKey, err := ev.relinKey("MulRelin")
	if err != nil {
		return nil, err
	}
	defer releaseKey()
	p := ev.params
	moduli := a.C0.Moduli

	// The degree-two products fully overwrite their destinations, so the
	// non-zeroed pooled polys are safe; d2 (and tmp on the staged path)
	// die inside this call and go back to the pool.
	d0 := p.Ctx.GetPoly(moduli)
	d0.IsNTT = true
	d1 := p.Ctx.GetPoly(moduli)
	d1.IsNTT = true
	d2 := p.Ctx.GetPoly(moduli)
	d2.IsNTT = true
	if ev.fused {
		// All three tensor components in one fork/join; the cross term
		// accumulates a0·b1 + a1·b0 per coefficient without a scratch poly.
		ring.MulRelinProducts(d0, d1, d2, a.C0, a.C1, b.C0, b.C1)
	} else {
		d0.MulCoeffs(a.C0, b.C0)
		d1.MulCoeffs(a.C0, b.C1)
		tmp := p.Ctx.GetPoly(moduli)
		tmp.IsNTT = true
		tmp.MulCoeffs(a.C1, b.C0)
		d1.Add(d1, tmp)
		p.Ctx.PutPoly(tmp)
		d2.MulCoeffs(a.C1, b.C1)
	}

	ks0, ks1 := ev.keySwitch(d2, rlk)
	p.Ctx.PutPoly(d2)
	if ev.fused {
		ring.AddPair(d0, d0, ks0, d1, d1, ks1)
	} else {
		d0.Add(d0, ks0)
		d1.Add(d1, ks1)
	}
	p.Ctx.PutPoly(ks0)
	p.Ctx.PutPoly(ks1)

	scale := new(big.Rat).Mul(a.Scale, b.Scale)
	noise := ev.nm.MulBits(core.RatLog2(a.Scale), a.NoiseBits, core.RatLog2(b.Scale), b.NoiseBits)
	out := newCiphertext(d0, d1, a.Level, scale, noise)
	if err := ev.guardNoise("MulRelin", out); err != nil {
		return nil, err
	}
	return out, nil
}

// Square is MulRelin(ct, ct) with one fewer pointwise multiply.
func (ev *Evaluator) Square(ct *Ciphertext) (*Ciphertext, error) {
	return ev.MulRelin(ct, ct)
}

// HoistedDecomp is the reusable first half of a hybrid keyswitch: the
// digit decomposition of a polynomial, basis-extended (ModUp) from its
// live moduli to live+special. Producing it costs one INTT plus one
// approximate basis conversion per digit — the dominant O(R²·N) part of a
// keyswitch — and it can then be consumed by many switching keys and
// Galois automorphisms (hoisting, HS18 / ARK-style inter-op reuse).
//
// The digits are kept in the coefficient domain so a Galois automorphism
// (a signed coefficient permutation, which commutes with the per-residue
// digit selection) can still be applied per rotation before the NTT and
// inner product.
type HoistedDecomp struct {
	live   []uint64
	ext    []uint64
	digits []*ring.Poly // indexed by digit; nil when the digit has no rows
	// c0 is the input ciphertext's C0 in the coefficient domain (only set
	// by DecomposeModUp), so each hoisted rotation pays one automorphism
	// plus one NTT for the non-switched half instead of INTT+NTT.
	c0    *ring.Poly
	level int
	scale *big.Rat
	noise float64
}

// Free returns the decomposition's scratch polynomials to the context
// pool. The decomposition must not be used afterwards.
func (hd *HoistedDecomp) Free(ctx *ring.Context) {
	for _, d := range hd.digits {
		if d != nil {
			ctx.PutPoly(d)
		}
	}
	hd.digits = nil
	if hd.c0 != nil {
		ctx.PutPoly(hd.c0)
		hd.c0 = nil
	}
}

// decomposePoly computes the digit decomposition + ModUp of c2 (NTT domain
// over the current level moduli). This is the per-input half of keySwitch;
// keySwitchHoisted is the per-key half.
func (ev *Evaluator) decomposePoly(c2 *ring.Poly) *HoistedDecomp {
	var c2c *ring.Poly
	if ev.fused {
		c2c = c2.ScratchCopyINTT()
	} else {
		c2c = c2.ScratchCopy()
		c2c.INTT()
	}
	hd := ev.decomposeCoeff(c2c)
	ev.params.Ctx.PutPoly(c2c)
	return hd
}

// decomposeCoeff is decomposePoly minus the copy/transform: c2c must
// already be in the coefficient domain over the live moduli (the fused
// Galois path feeds the permuted polynomial straight in, skipping a
// round trip through the NTT domain — bit-identical because the
// transforms are exact inverses). c2c is only read.
func (ev *Evaluator) decomposeCoeff(c2c *ring.Poly) *HoistedDecomp {
	p := ev.params
	live := c2c.Moduli
	special := p.Chain.Special
	ext := append(append([]uint64(nil), live...), special...)

	// Rows of c2c per digit.
	digitRows := make(map[int][]int)
	for i, q := range live {
		d := p.DigitOf(q)
		digitRows[d] = append(digitRows[d], i)
	}

	rowOf := make(map[uint64]int, len(ext))
	for i, q := range ext {
		rowOf[q] = i
	}

	hd := &HoistedDecomp{
		live:   append([]uint64(nil), live...),
		ext:    ext,
		digits: make([]*ring.Poly, p.Dnum),
	}
	for d := 0; d < p.Dnum; d++ {
		rows := digitRows[d]
		if len(rows) == 0 {
			continue
		}
		srcModuli := make([]uint64, len(rows))
		srcRes := make([][]uint64, len(rows))
		inDigit := map[uint64]bool{}
		for i, r := range rows {
			srcModuli[i] = live[r]
			srcRes[i] = c2c.Coeffs[r]
			inDigit[live[r]] = true
		}
		// Targets: everything in ext not in this digit's live set.
		var dstModuli []uint64
		for _, q := range ext {
			if !inDigit[q] {
				dstModuli = append(dstModuli, q)
			}
		}
		cv := ev.conv(srcModuli, dstModuli)

		// Assemble the extended digit over ext (coefficient domain):
		// the digit's own rows are copied, the rest are basis-converted
		// straight into the pooled (non-zeroed) poly — together they
		// cover every row, so nothing needs clearing.
		digit := p.Ctx.GetPoly(ext)
		digit.IsNTT = false
		dstRes := make([][]uint64, len(dstModuli))
		for i, q := range dstModuli {
			dstRes[i] = digit.Coeffs[rowOf[q]]
		}
		cv.Convert(dstRes, srcRes)
		for i, q := range srcModuli {
			copy(digit.Coeffs[rowOf[q]], srcRes[i])
		}
		hd.digits[d] = digit
	}
	if ev.fused {
		// Fused consumers take the digits in the evaluation domain: a
		// Galois automorphism there is a pure permutation of evaluation
		// points (ring.PermuteNTT), so transforming each extended digit
		// ONCE here lets every hoisted rotation reuse it with zero
		// transforms, and the galEl==1 inner product aliases it with zero
		// copies. One batched fork/join over all digit rows; bit-identical
		// to transforming per use because the transform is deterministic.
		var built []*ring.Poly
		for _, d := range hd.digits {
			if d != nil {
				built = append(built, d)
			}
		}
		ring.NTTBatch(built...)
	}
	return hd
}

// DecomposeModUp computes the hoisted decomposition of ct's C1 (plus a
// coefficient-domain copy of C0), ready to be consumed by RotateHoisted
// or keySwitchHoisted any number of times. Release it with Free.
func (ev *Evaluator) DecomposeModUp(ct *Ciphertext) (*HoistedDecomp, error) {
	if err := ev.begin("DecomposeModUp", ct); err != nil {
		return nil, err
	}
	hd := ev.decomposePoly(ct.C1)
	var c0 *ring.Poly
	if ev.fused {
		// Evaluation-domain snapshot: each hoisted rotation permutes it in
		// place of an automorphism+NTT — zero transforms per rotation.
		c0 = ct.C0.ScratchCopy()
	} else {
		c0 = ct.C0.ScratchCopy()
		c0.INTT()
	}
	hd.c0 = c0
	hd.level = ct.Level
	hd.scale = new(big.Rat).Set(ct.Scale)
	hd.noise = ct.NoiseBits
	return hd, nil
}

// keySwitchHoisted is the per-key half of a hybrid keyswitch: apply the
// Galois automorphism galEl (1 = identity) to each pre-extended digit,
// inner-multiply with the key, and ModDown (divide the accumulated pair
// by P) back to the live moduli. With galEl == 1 this is bit-identical to
// the unsplit keyswitch. Outputs are in the NTT domain.
func (ev *Evaluator) keySwitchHoisted(hd *HoistedDecomp, swk *SwitchingKey, galEl uint64) (*ring.Poly, *ring.Poly) {
	if ev.fused {
		return ev.keySwitchFused(hd, swk, galEl, true)
	}
	return ev.keySwitchHoistedUnfused(hd, swk, galEl)
}

// keySwitchFused is the fused twin of keySwitchHoistedUnfused: each digit
// is consumed in the evaluation domain (pre-transformed once by the fused
// decomposition, so galEl==1 aliases it copy-free and a Galois map is a
// pure permutation of evaluation points), both inner-product halves share
// one fork/join against the accumulator pair, and the ModDown runs in the
// NTT domain when the caller wants NTT output — only the special rows are
// inverse-transformed and only the basis-conversion rows transformed
// forward, so the live accumulator rows never leave the evaluation
// domain. Bit-identical to the staged pipeline — the first digit writes
// the accumulators directly (AddMod with a zero accumulator is the
// identity), every later stage preserves canonical residues, and the
// transforms are exactly linear.
//
// nttOut=false returns the pair in the coefficient domain so callers that
// keep computing there (rescale tails) skip transforms.
func (ev *Evaluator) keySwitchFused(hd *HoistedDecomp, swk *SwitchingKey, galEl uint64, nttOut bool) (*ring.Poly, *ring.Poly) {
	acc0, acc1 := ev.keySwitchExtFused(hd, swk, galEl)
	return ev.extModDownFused(acc0, acc1, hd.live, nttOut)
}

// keySwitchExtFused is the inner-product half of the fused keyswitch: it
// returns the accumulated pair still in the extended (live+special) basis
// and the NTT domain, WITHOUT dividing by P. Callers either hand the pair
// to extModDownFused, or — when several keyswitch outputs are about to be
// summed anyway (BSGS giant steps) — add the raw pairs first and ModDown
// once: mod-q addition is exact, so the regrouping is value-safe, and the
// single shared rounding makes the sum cheaper than per-term ModDowns.
// The returned polys are pooled; the caller owns them.
func (ev *Evaluator) keySwitchExtFused(hd *HoistedDecomp, swk *SwitchingKey, galEl uint64) (*ring.Poly, *ring.Poly) {
	p := ev.params
	ext := hd.ext

	acc0 := p.Ctx.GetPoly(ext)
	acc0.IsNTT = true
	acc1 := p.Ctx.GetPoly(ext)
	acc1.IsNTT = true

	first := true
	for d := 0; d < p.Dnum; d++ {
		if hd.digits[d] == nil {
			continue
		}
		var digit *ring.Poly
		owned := true
		switch src := hd.digits[d]; {
		case src.IsNTT && galEl == 1:
			// Pre-transformed digit, identity map: the inner product only
			// reads its rows, so alias it instead of copying.
			digit = src
			owned = false
		case src.IsNTT:
			digit = src.PermuteNTT(galEl)
		case galEl == 1:
			// Coefficient-domain digit (staged decomposition consumed
			// under a fused evaluator): legacy copy+NTT per use.
			digit = src.ScratchCopyNTT()
		default:
			digit = src.AutomorphismNTT(galEl)
		}
		// The key rows are only read: alias them instead of copying the
		// whole switching key per digit.
		kb := swk.B[d].RestrictView(ext)
		if swk.A[d] == nil {
			// Seed-compressed key: the uniform A rows are regenerated from
			// the digit's seed inside the fused dispatch, one residue row
			// at a time — row content depends only on (seed, modulus), so
			// the regenerated sub-basis matches the dense key's restricted
			// rows bit for bit, and A never materializes.
			if first {
				ring.MulCoeffsPairIntoSeeded(acc0, acc1, digit, kb, swk.ASeeds[d])
				first = false
			} else {
				ring.MulCoeffsPairAddSeeded(acc0, acc1, digit, kb, swk.ASeeds[d])
			}
		} else if first {
			ring.MulCoeffsPairInto(acc0, acc1, digit, kb, swk.A[d].RestrictView(ext))
			first = false
		} else {
			ring.MulCoeffsPairAdd(acc0, acc1, digit, kb, swk.A[d].RestrictView(ext))
		}
		if owned {
			p.Ctx.PutPoly(digit)
		}
	}
	if first {
		// No live digit (cannot happen for a well-formed chain, but the
		// pooled accumulators are not zeroed — make the degenerate case
		// match the zero-initialized legacy path).
		for _, a := range []*ring.Poly{acc0, acc1} {
			for _, row := range a.Coeffs {
				for k := range row {
					row[k] = 0
				}
			}
		}
	}
	return acc0, acc1
}

// extModDownFused divides an extended-basis accumulator pair by P and
// sheds the special moduli, landing back on live. It consumes acc0/acc1
// (returned to the pool).
func (ev *Evaluator) extModDownFused(acc0, acc1 *ring.Poly, live []uint64, nttOut bool) (*ring.Poly, *ring.Poly) {
	p := ev.params
	ext := acc0.Moduli
	special := p.Chain.Special
	shedPos := make([]int, len(special))
	for i := range special {
		shedPos[i] = len(live) + i
	}
	sd := ev.scaleDownParams(ext, shedPos)
	var outs []*ring.Poly
	if nttOut {
		// NTT-domain ModDown: the live rows stay put; only the special
		// rows are inverse-transformed and only the conversion rows
		// transformed forward.
		outs = sd.ScaleDownNTTBatch([]*ring.Poly{acc0, acc1})
	} else {
		ring.INTTBatch(acc0, acc1)
		outs = sd.ScaleDownBatch([]*ring.Poly{acc0, acc1}, false)
	}
	p.Ctx.PutPoly(acc0)
	p.Ctx.PutPoly(acc1)
	return outs[0], outs[1]
}

// keySwitch applies swk to c2 (NTT domain over the current level moduli),
// returning the two correction polynomials over the same moduli.
//
// Hybrid keyswitching: decompose c2 into Dnum digits (grouped by the
// parameter layout), extend each digit from its live moduli to the full
// live+special basis (ModUp, approximate), inner-multiply with the key,
// and divide the accumulated pair by P (ModDown, exact up to the floor
// error) to land back on the live moduli. The two halves are split so
// rotation-heavy kernels can hoist the decomposition (DecomposeModUp)
// across many keys.
func (ev *Evaluator) keySwitch(c2 *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	hd := ev.decomposePoly(c2)
	out0, out1 := ev.keySwitchHoisted(hd, swk, 1)
	hd.Free(ev.params.Ctx)
	return out0, out1
}

// ---------------------------------------------------------------------------
// Rotations
// ---------------------------------------------------------------------------

// noopRelease is the release function for keys served from the static
// key set, which are never demoted or evicted.
func noopRelease() {}

// galoisKey fetches the switching key for galEl, pinned until release is
// called. With a key manager it is generated/promoted on demand; from
// the static key set absence maps onto the typed taxonomy.
func (ev *Evaluator) galoisKey(op string, galEl uint64) (*SwitchingKey, func(), error) {
	if ev.km != nil {
		return ev.km.Acquire(ev.ctx, op, galEl)
	}
	if ev.keys == nil {
		return nil, nil, fherr.Wrap(fherr.ErrMissingKey, "ckks: %s: no evaluation keys", op)
	}
	swk, ok := ev.keys.Galois[galEl]
	if !ok {
		return nil, nil, fherr.Wrap(fherr.ErrMissingKey, "ckks: %s: no Galois key for element %d", op, galEl)
	}
	return swk, noopRelease, nil
}

// relinKey fetches the relinearization key, pinned until release runs.
func (ev *Evaluator) relinKey(op string) (*SwitchingKey, func(), error) {
	if ev.km != nil {
		return ev.km.Acquire(ev.ctx, op, RelinKeyID)
	}
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, nil, fherr.Wrap(fherr.ErrMissingKey, "ckks: %s: no relinearization key", op)
	}
	return ev.keys.Relin, noopRelease, nil
}

// PinGaloisKeys declares a plan's whole rotation-key demand up front:
// with a key manager, every element in els is pinned resident until the
// returned release runs, so a multi-keyswitch plan (BSGS transform,
// hoisted rotation fan-out, pipeline stage) streams its working set in
// once instead of thrashing the budget key by key. Without a manager it
// is a no-op — static key sets are always resident.
func (ev *Evaluator) PinGaloisKeys(op string, els []uint64) (func(), error) {
	if ev.km == nil {
		return noopRelease, nil
	}
	return ev.km.Pin(ev.ctx, op, els)
}

// applyGalois maps both ciphertext polys through X -> X^galEl and switches
// the key back to s.
//
// Fused path: only C1 leaves the evaluation domain — its permuted
// coefficient form feeds the digit decomposition (skipping the legacy
// NTT→INTT round trip, which is exact and therefore bit-identical). C0
// never transforms at all: in the NTT domain the automorphism is a pure
// permutation of evaluation points, and the keyswitch corrections come
// back NTT-domain (NTT ModDown), so the fold is a single gather+add.
func (ev *Evaluator) applyGalois(op string, ct *Ciphertext, galEl uint64) (*Ciphertext, error) {
	swk, releaseKey, err := ev.galoisKey(op, galEl)
	if err != nil {
		return nil, err
	}
	defer releaseKey()
	if !ev.fused {
		return ev.applyGaloisUnfused(ct, swk, galEl)
	}
	ctx := ev.params.Ctx
	a1c := ring.AutomorphismFromNTTBatch(galEl, ct.C1)[0]
	hd := ev.decomposeCoeff(a1c)
	ctx.PutPoly(a1c)
	ks0, ks1 := ev.keySwitchFused(hd, swk, 1, true)
	hd.Free(ctx)
	// φ(c0) + ks0 computed as one evaluation-domain gather+add: equal
	// bit-for-bit to permuting in the coefficient domain and transforming,
	// because the transform is exactly linear on canonical residues.
	c0 := ct.C0.PermuteNTTAdd(galEl, ks0)
	ctx.PutPoly(ks0)
	noise := addNoiseBits(ct.NoiseBits, ev.nm.KeySwitchBits())
	return newCiphertext(c0, ks1, ct.Level, new(big.Rat).Set(ct.Scale), noise), nil
}

// normalizeSteps reduces a rotation amount into [0, slots).
func normalizeSteps(steps, slots int) int {
	return ((steps % slots) + slots) % slots
}

// Rotate rotates the encrypted slot vector left by steps. A rotation by a
// multiple of the slot count is the identity and returns a copy without
// performing (or requiring a key for) a keyswitch.
func (ev *Evaluator) Rotate(ct *Ciphertext, steps int) (*Ciphertext, error) {
	if err := ev.begin("Rotate", ct); err != nil {
		return nil, err
	}
	if normalizeSteps(steps, ev.params.Slots()) == 0 {
		return ct.CopyNew(), nil
	}
	return ev.applyGalois("Rotate", ct, ring.GaloisElementForRotation(steps, ev.params.N()))
}

// Conjugate conjugates the encrypted slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	if err := ev.begin("Conjugate", ct); err != nil {
		return nil, err
	}
	return ev.applyGalois("Conjugate", ct, ring.GaloisElementForConjugation(ev.params.N()))
}

// rotateHoisted applies one rotation (galEl for nonzero normalized steps)
// to a pre-decomposed ciphertext. The fused path is double-hoisted: the
// digits were transformed once at decomposition, so a rotation is a pure
// evaluation-domain permutation of each digit + inner product + NTT
// ModDown, and the C0 half is a single gather+add — the per-rotation
// transform count drops from O(dnum·ext) to just the ModDown's
// special-row INTTs and conversion-row NTTs.
func (ev *Evaluator) rotateHoisted(hd *HoistedDecomp, steps int) (*Ciphertext, error) {
	galEl := ring.GaloisElementForRotation(steps, ev.params.N())
	swk, releaseKey, err := ev.galoisKey("RotateHoisted", galEl)
	if err != nil {
		return nil, err
	}
	defer releaseKey()
	if !ev.fused {
		return ev.rotateHoistedUnfused(hd, swk, galEl)
	}
	if !hd.c0.IsNTT {
		// Staged-produced decomposition consumed under a fused evaluator:
		// run the legacy fused fold (coefficient-domain C0 + shared NTT).
		c0 := hd.c0.Automorphism(galEl)
		ks0, ks1 := ev.keySwitchFused(hd, swk, galEl, false)
		c0.AddNTT(ks0)
		ev.params.Ctx.PutPoly(ks0)
		ks1.NTT()
		noise := addNoiseBits(hd.noise, ev.nm.KeySwitchBits())
		return newCiphertext(c0, ks1, hd.level, new(big.Rat).Set(hd.scale), noise), nil
	}
	ks0, ks1 := ev.keySwitchFused(hd, swk, galEl, true)
	c0 := hd.c0.PermuteNTTAdd(galEl, ks0)
	ev.params.Ctx.PutPoly(ks0)
	noise := addNoiseBits(hd.noise, ev.nm.KeySwitchBits())
	return newCiphertext(c0, ks1, hd.level, new(big.Rat).Set(hd.scale), noise), nil
}

// RotateHoisted rotates ct by every amount in steps, sharing one digit
// decomposition (ModUp) across all of them: n rotations of the same
// ciphertext cost 1 ModUp + n (automorphism + inner product + ModDown)
// instead of n full keyswitches. Steps are normalized modulo the slot
// count and deduplicated internally; the returned slice is indexed like
// steps, with each entry an independent ciphertext. Rotations by zero (or
// a multiple of the slot count) are plain copies.
//
// The hoisted results are value-equivalent to Rotate's (same level, scale
// and noise bound) but not bit-identical: the approximate ModUp error is
// computed before the automorphism instead of after, which permutes the
// sub-noise rounding. See DESIGN.md.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) ([]*Ciphertext, error) {
	if err := ev.begin("RotateHoisted", ct); err != nil {
		return nil, err
	}
	slots := ev.params.Slots()
	out := make([]*Ciphertext, len(steps))

	// Dedupe the normalized nonzero steps, preserving first-seen order.
	var uniq []int
	seen := map[int]bool{}
	for _, s := range steps {
		n := normalizeSteps(s, slots)
		if n != 0 && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}

	var hd *HoistedDecomp
	if len(uniq) > 0 {
		// Declare the whole rotation-key demand before the fan-out: with a
		// key manager the working set is pinned resident across all the
		// rotations instead of being acquired (and possibly evicted and
		// regenerated) once per step.
		els := make([]uint64, len(uniq))
		for i, n := range uniq {
			els[i] = ring.GaloisElementForRotation(n, ev.params.N())
		}
		releaseKeys, err := ev.PinGaloisKeys("RotateHoisted", els)
		if err != nil {
			return nil, err
		}
		defer releaseKeys()
		hd, err = ev.DecomposeModUp(ct)
		if err != nil {
			return nil, err
		}
		defer hd.Free(ev.params.Ctx)
	}
	rotated := make(map[int]*Ciphertext, len(uniq))
	if ev.fused && len(uniq) > 1 {
		// Independent rotations off the shared decomposition: fan out as
		// one fork/join, first error (in step order) wins.
		rs := make([]*Ciphertext, len(uniq))
		rerrs := make([]error, len(uniq))
		cost := ev.params.N() * ct.C0.R() * 8
		if err := engine.DispatchCtx(ev.ctx, len(uniq), cost, func(i int) {
			rs[i], rerrs[i] = ev.rotateHoisted(hd, uniq[i])
		}); err != nil {
			return nil, err
		}
		for _, err := range rerrs {
			if err != nil {
				return nil, err
			}
		}
		for i, n := range uniq {
			rotated[n] = rs[i]
		}
	} else {
		for _, n := range uniq {
			r, err := ev.rotateHoisted(hd, n)
			if err != nil {
				return nil, err
			}
			rotated[n] = r
		}
	}
	used := map[int]bool{}
	for i, s := range steps {
		n := normalizeSteps(s, slots)
		switch {
		case n == 0:
			out[i] = ct.CopyNew()
		case !used[n]:
			out[i] = rotated[n]
			used[n] = true
		default: // duplicate step: hand out an independent copy
			out[i] = rotated[n].CopyNew()
		}
	}
	return out, nil
}
