package shard

// White-box coverage for Options defaulting and validation: zero and
// negative tuning values select documented defaults, while an explicit
// heartbeat timeout below the beat interval — which would declare every
// worker hung at its first deadline check — is rejected with the typed
// parameter error before any worker is spawned.

import (
	"context"
	"errors"
	"testing"
	"time"

	"bitpacker/internal/fherr"
)

func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
	}{
		{"zero", Options{}},
		{"negative", Options{Workers: -3, HeartbeatInterval: -time.Second, HeartbeatTimeout: -time.Second, ShardAttempts: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.in.withDefaults()
			if o.Workers != 2 {
				t.Errorf("Workers default = %d, want 2", o.Workers)
			}
			if o.HeartbeatInterval != 250*time.Millisecond {
				t.Errorf("HeartbeatInterval default = %v, want 250ms", o.HeartbeatInterval)
			}
			if o.HeartbeatTimeout != 8*o.HeartbeatInterval {
				t.Errorf("HeartbeatTimeout default = %v, want %v", o.HeartbeatTimeout, 8*o.HeartbeatInterval)
			}
			if o.ShardAttempts != 3 {
				t.Errorf("ShardAttempts default = %d, want 3", o.ShardAttempts)
			}
			if o.Reconnect.MaxAttempts <= 0 || o.Reconnect.BaseDelay <= 0 || o.Reconnect.MaxDelay <= 0 {
				t.Errorf("Reconnect policy not defaulted: %+v", o.Reconnect)
			}
			if o.Logf == nil {
				t.Error("Logf not defaulted")
			}
		})
	}
}

func TestOptionsWorkersDefaultFollowsFleet(t *testing.T) {
	o := Options{Addrs: []string{"a:1", "b:2", "c:3"}}.withDefaults()
	if o.Workers != 3 {
		t.Fatalf("Workers = %d with 3 fleet addresses, want 3", o.Workers)
	}
	o = Options{Addrs: []string{"a:1"}, Workers: 5}.withDefaults()
	if o.Workers != 5 {
		t.Fatalf("explicit Workers overridden to %d", o.Workers)
	}
}

func TestOptionsValidate(t *testing.T) {
	ok := []Options{
		{}, // all defaults
		{HeartbeatInterval: 50 * time.Millisecond},                                      // timeout defaulted from interval
		{HeartbeatTimeout: time.Second},                                                 // above the default interval
		{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: time.Second},       // explicit, ordered
		{HeartbeatInterval: -time.Second, HeartbeatTimeout: 300 * time.Millisecond},     // negative interval defaults to 250ms, below timeout
		{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: -3 * time.Second},  // negative timeout defaults
		{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 50 * time.Millisecond}, // equal is allowed
	}
	for i, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("valid options %d rejected: %v", i, err)
		}
	}
	bad := []Options{
		{HeartbeatTimeout: 100 * time.Millisecond},                                    // below the default 250ms interval
		{HeartbeatInterval: time.Second, HeartbeatTimeout: 100 * time.Millisecond},    // below explicit interval
		{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: time.Nanosecond}, // pathological
	}
	for i, o := range bad {
		err := o.Validate()
		if err == nil {
			t.Errorf("contradictory options %d accepted", i)
			continue
		}
		if !errors.Is(err, fherr.ErrInvalidParams) {
			t.Errorf("contradictory options %d: %v, want ErrInvalidParams", i, err)
		}
	}
}

// TestRunRejectsInvalidOptions pins that Run enforces Validate before
// spawning anything.
func TestRunRejectsInvalidOptions(t *testing.T) {
	opts := Options{
		Dir:               t.TempDir(),
		WorkerCommand:     []string{"/bin/true"},
		HeartbeatInterval: time.Second,
		HeartbeatTimeout:  time.Millisecond,
	}
	cb := Callbacks{
		ShardDone: func(int, int) error { return nil },
		ExecLocal: func(context.Context, int, int) error { return nil },
	}
	stats, err := Run(context.Background(), opts, 1, nil, cb)
	if err == nil || !errors.Is(err, fherr.ErrInvalidParams) {
		t.Fatalf("Run accepted timeout < interval: %v", err)
	}
	if stats.Spawns != 0 {
		t.Fatalf("invalid options still spawned %d workers", stats.Spawns)
	}
}
