package worker

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"bitpacker/internal/shard"
)

// Fleet serves shard workers to dialing supervisors over TCP (`bpworker
// -listen addr`). Each accepted connection starts with a hello
// handshake naming the job exchange directory, the job fingerprint, and
// the worker slot; the fleet verifies the fingerprint against the job
// file on disk (rejecting a supervisor that tries to adopt it for a
// different job), then serves the ordinary assign/beat/done/fail
// protocol on the socket.
//
// Unlike a forked worker, a fleet member outlives its connection: a
// dropped socket does not cancel in-flight compute. Completions reached
// while disconnected are queued on the slot and flushed — after a ready
// message reporting the slot's in-flight lease (epoch 0 = idle) — when
// the supervisor reconnects. Stale assignments (a lease the supervisor
// re-dispatched while partitioned) are simply superseded: a new assign
// cancels the old compute, and any late report from it carries the old
// epoch, which the supervisor's fence drops.
type Fleet struct {
	ln   net.Listener
	logf func(format string, args ...any)

	mu          sync.Mutex
	jobs        map[string]*jobEntry  // "dir|fp" -> lazily built runtime
	slots       map[string]*fleetSlot // "dir|fp|worker" -> slot state
	refuseUntil time.Time             // chaos partition: refuse handshakes until then
	closed      bool

	wg sync.WaitGroup
}

type jobEntry struct {
	once sync.Once
	rt   *runtime
	err  error
}

// Listen binds a fleet listener on addr ("host:port"; ":0" picks a
// port). Call Serve to accept supervisors; Addr reports the bound
// address. logf may be nil.
func Listen(addr string, logf func(format string, args ...any)) (*Fleet, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("worker: listen %s: %w", addr, err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Fleet{
		ln:    ln,
		logf:  logf,
		jobs:  map[string]*jobEntry{},
		slots: map[string]*fleetSlot{},
	}, nil
}

// Addr is the bound listen address.
func (f *Fleet) Addr() string { return f.ln.Addr().String() }

// Serve accepts supervisor connections until Close. It returns nil after
// Close, else the accept error.
func (f *Fleet) Serve() error {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.handle(conn)
		}()
	}
}

// Close stops accepting, drops every live connection, cancels in-flight
// compute, and waits for connection handlers to finish.
func (f *Fleet) Close() error {
	f.mu.Lock()
	f.closed = true
	slots := make([]*fleetSlot, 0, len(f.slots))
	for _, sl := range f.slots {
		slots = append(slots, sl)
	}
	f.mu.Unlock()
	err := f.ln.Close()
	for _, sl := range slots {
		sl.shutdown()
	}
	f.wg.Wait()
	return err
}

// refuse makes the fleet drop incoming handshakes for d (the chaos
// partition injector).
func (f *Fleet) refuse(d time.Duration) {
	f.mu.Lock()
	until := time.Now().Add(d)
	if until.After(f.refuseUntil) {
		f.refuseUntil = until
	}
	f.mu.Unlock()
}

func (f *Fleet) refusing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Now().Before(f.refuseUntil)
}

// job returns the cached runtime for (dir, fingerprint), loading the job
// file and rebuilding the FHE context on first use.
func (f *Fleet) job(dir string, fp uint64) (*runtime, error) {
	key := fmt.Sprintf("%s|%d", dir, fp)
	f.mu.Lock()
	e := f.jobs[key]
	if e == nil {
		e = &jobEntry{}
		f.jobs[key] = e
	}
	f.mu.Unlock()
	e.once.Do(func() {
		rt, err := loadRuntime(dir)
		if err != nil {
			e.err = err
			return
		}
		if rt.fingerprint != fp {
			e.err = fmt.Errorf("worker: job fingerprint %d on disk, supervisor claims %d", rt.fingerprint, fp)
			return
		}
		e.rt = rt
	})
	return e.rt, e.err
}

// slot returns the slot state for (dir, fingerprint, worker), creating
// it (and its beater) on first use.
func (f *Fleet) slot(dir string, fp uint64, worker, beatMs int) *fleetSlot {
	key := fmt.Sprintf("%s|%d|%d", dir, fp, worker)
	f.mu.Lock()
	defer f.mu.Unlock()
	sl := f.slots[key]
	if sl == nil {
		sl = &fleetSlot{fleet: f, worker: worker}
		if beatMs <= 0 {
			beatMs = 250
		}
		sl.b = newBeater(sl, time.Duration(beatMs)*time.Millisecond)
		f.slots[key] = sl
	}
	return sl
}

// handle runs one supervisor connection: hardened hello handshake,
// fingerprint check, slot attach, then the assign/drain read loop. The
// connection ending never cancels compute — only a drain or a
// superseding assign does.
func (f *Fleet) handle(conn net.Conn) {
	if f.refusing() {
		conn.Close()
		return
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	hello, err := shard.ReadMessage(br)
	if err != nil || hello.Type != shard.MsgHello {
		f.logf("worker: fleet: bad handshake from %s: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	rt, err := f.job(hello.Dir, hello.Fingerprint)
	if err != nil {
		f.logf("worker: fleet: reject %s: %v", conn.RemoteAddr(), err)
		reject(conn, err.Error())
		return
	}
	sl := f.slot(hello.Dir, hello.Fingerprint, hello.Worker, hello.BeatMs)
	sl.attach(conn, rt)
	f.logf("worker: fleet: supervisor %s attached (dir=%s worker=%d)", conn.RemoteAddr(), hello.Dir, hello.Worker)
	for {
		m, err := shard.ReadMessage(br)
		if err != nil {
			sl.detach(conn)
			return
		}
		switch m.Type {
		case shard.MsgAssign:
			sl.assign(m.Shard, m.Epoch)
		case shard.MsgDrain:
			sl.drain()
			return
		}
	}
}

// reject answers a failed handshake and closes the connection.
func reject(conn net.Conn, why string) {
	fmt.Fprintf(conn, `{"t":%q,"err":%q}`+"\n", shard.MsgReject, why)
	conn.Close()
}
