package bitpacker

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"bitpacker/internal/accel"
	"bitpacker/internal/fherr"
	"bitpacker/internal/pipeline"
	"bitpacker/internal/shard"
)

// Shard program operations. A sharded job's program must be declarative
// (it crosses a process boundary as JSON), so it is a sequence of named
// steps rather than closures — the same op vocabulary the serving layer
// exposes, applied to every ciphertext of a shard.
const (
	ShardOpSquare  = "square"  // MulRescale(x, x)
	ShardOpQuartic = "quartic" // square twice
	ShardOpNegate  = "negate"  // Neg(x)
	ShardOpOffset  = "offset"  // AddConst(x, Arg)
	ShardOpScale   = "scale"   // MulConst(x, Arg) then Rescale
	ShardOpRotate  = "rotate"  // Rotate(x, int(Arg))
)

// ShardStep is one step of a sharded job's program.
type ShardStep struct {
	Op  string  `json:"op"`
	Arg float64 `json:"arg,omitempty"`
}

// ValidShardOp reports whether op names a shard program operation.
func ValidShardOp(op string) bool {
	switch op {
	case ShardOpSquare, ShardOpQuartic, ShardOpNegate, ShardOpOffset, ShardOpScale, ShardOpRotate:
		return true
	}
	return false
}

// ApplyShardStep applies one program step to every ciphertext of a
// shard's state, preserving order and count.
func (c *Context) ApplyShardStep(step ShardStep, state []*Ciphertext) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(state))
	for i, ct := range state {
		var r *Ciphertext
		var err error
		switch step.Op {
		case ShardOpSquare:
			r, err = c.MulRescale(ct, ct)
		case ShardOpQuartic:
			r, err = c.MulRescale(ct, ct)
			if err == nil {
				r, err = c.MulRescale(r, r)
			}
		case ShardOpNegate:
			r, err = c.Neg(ct)
		case ShardOpOffset:
			r, err = c.AddConst(ct, uniformSlots(c.Slots(), step.Arg))
		case ShardOpScale:
			r, err = c.MulConst(ct, uniformSlots(c.Slots(), step.Arg))
			if err == nil {
				r, err = c.Rescale(r)
			}
		case ShardOpRotate:
			r, err = c.Rotate(ct, int(step.Arg))
		default:
			err = fherr.Wrap(fherr.ErrInvalidParams, "bitpacker: unknown shard op %q", step.Op)
		}
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func uniformSlots(slots int, v float64) []complex128 {
	vec := make([]complex128, slots)
	for i := range vec {
		vec[i] = complex(v, 0)
	}
	return vec
}

// ShardHook observes a shard's step boundaries inside ExecShard: it is
// called with the step index before each program step runs (skipped for
// steps restored from a checkpoint) and with len(program) after the last
// step completes. The worker uses it for progress heartbeats and chaos
// injection points.
type ShardHook func(step int)

// shardStages builds the checkpointable pipeline for a shard program.
func (c *Context) shardStages(program []ShardStep, hook ShardHook) []PipelineStage {
	stages := make([]PipelineStage, len(program))
	for i, st := range program {
		i, st := i, st
		stages[i] = PipelineStage{
			Name: fmt.Sprintf("%02d-%s", i, st.Op),
			Run: func(ctx context.Context, state []*Ciphertext) ([]*Ciphertext, error) {
				if hook != nil {
					hook(i)
				}
				return c.WithContext(ctx).ApplyShardStep(st, state)
			},
		}
	}
	return stages
}

// EncodeCiphertexts serializes a ciphertext batch in the shard-exchange
// wire format (the pipeline checkpoint state encoding).
func (c *Context) EncodeCiphertexts(cts []*Ciphertext) ([]byte, error) {
	inner, err := unwrapState(cts)
	if err != nil {
		return nil, err
	}
	return pipeline.EncodeState(inner)
}

// DecodeCiphertexts decodes an EncodeCiphertexts batch, validating every
// ciphertext against the context's chain and reseeding the RRNS spare
// channel (deserialization is a trusted point, like a fresh encryption).
func (c *Context) DecodeCiphertexts(data []byte) ([]*Ciphertext, error) {
	inner, err := pipeline.DecodeState(c.params, data)
	if err != nil {
		return nil, fherr.Wrap(fherr.ErrInvalidParams, "bitpacker: %v", err)
	}
	for i, ct := range inner {
		if err := ct.Validate(c.params); err != nil {
			return nil, fmt.Errorf("bitpacker: shard batch ciphertext %d: %w", i, err)
		}
		if c.params.SpareModulus() != 0 {
			ct.SeedSpare(c.params)
		}
	}
	return wrapState(inner), nil
}

// ShardOutputPath returns the durable output file of one shard inside a
// job exchange directory (for inspection and fault injection).
func ShardOutputPath(dir string, shardID int) string {
	return pipeline.DirStorePath(shard.OutDir(dir), shardID)
}

// ExecShard executes one shard of a sharded job from its durable input
// to its durable output: reads the shard's input batch from the exchange
// directory, runs the program through the checkpointed pipeline (per-step
// checkpoints under the shard's checkpoint directory — a re-dispatched
// shard resumes from its last durable step instead of recomputing), and
// atomically publishes the checksummed output stamped with the lease
// epoch the dispatch carried (shard.OutputName), which is how the
// supervisor fences output files overwritten by zombie workers holding
// broken leases. Worker processes, fleet members, and the supervisor's
// degraded in-process fallback all run shards through this one code
// path, which is what makes every execution mode bit-identical.
func (c *Context) ExecShard(ctx context.Context, dir string, shardID, epoch int, program []ShardStep, hook ShardHook) error {
	inStore, err := pipeline.NewDirStore(shard.InDir(dir))
	if err != nil {
		return err
	}
	_, blob, err := inStore.Get(shardID)
	if err != nil {
		return fmt.Errorf("bitpacker: shard %d input: %w", shardID, err)
	}
	state, err := c.DecodeCiphertexts(blob)
	if err != nil {
		return fmt.Errorf("bitpacker: shard %d input: %w", shardID, err)
	}
	final, _, err := c.RunPipeline(ctx, c.shardStages(program, hook), state,
		PipelineOptions{CheckpointDir: shard.CkptDir(dir, shardID), Keep: true})
	if err != nil {
		return err
	}
	if hook != nil {
		hook(len(program))
	}
	out, err := c.EncodeCiphertexts(final)
	if err != nil {
		return err
	}
	outStore, err := pipeline.NewDirStore(shard.OutDir(dir))
	if err != nil {
		return err
	}
	return outStore.Put(shardID, shard.OutputName(shardID, epoch), out)
}

// SupervisorStats counts the shard supervisor's recovery actions
// (respawns, re-dispatches, heartbeat misses, leases stolen, degraded
// entries, ...), alongside KeyCacheStats in the observability surface.
type SupervisorStats = shard.Stats

// ShardOptions tunes RunSharded.
type ShardOptions struct {
	// Dir is the job exchange directory: inputs, outputs, per-shard
	// checkpoints and the job description live under it, and a rerun over
	// the same directory resumes (finished shards are not recomputed; a
	// different job's leftovers are detected by fingerprint and cleared).
	// Empty uses a private temporary directory (no cross-run resume).
	Dir string
	// Workers is the worker-process count (default 2).
	Workers int
	// ShardSize is the number of ciphertexts per shard. Zero picks a
	// default that keeps at least ~4 shards per worker for re-dispatch
	// granularity (minimum 1 ciphertext).
	ShardSize int
	// WorkerCommand overrides worker-binary resolution (argv). When
	// empty, the BITPACKER_BPWORKER environment variable is tried, then
	// bpworker on PATH; with none available the job runs degraded
	// in-process (or fails if DisableDegraded).
	WorkerCommand []string
	// WorkerEnv is appended to every worker's environment.
	WorkerEnv []string
	// Addrs lists standing fleet endpoints (`bpworker -listen`). When
	// non-empty the job runs over the TCP transport — the supervisor
	// dials out, authenticates each connection with the job fingerprint,
	// and no local worker processes are forked. Workers defaults to
	// len(Addrs). If every fleet member is lost the job degrades to
	// in-process execution (or fails, if DisableDegraded).
	Addrs []string
	// EngineWorkers caps each worker process's execution-engine
	// parallelism (default: NumCPU / Workers, minimum 1) so the fleet
	// does not oversubscribe the host.
	EngineWorkers int
	// HeartbeatInterval / HeartbeatTimeout / ShardDeadline configure hang
	// detection (see shard.Options).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	ShardDeadline     time.Duration
	// Respawn is the per-worker crash/hang recovery policy with
	// engine.Retrier semantics (backoff, attempt budget, circuit
	// breaker). Zero values select the Retrier defaults.
	Respawn RetryPolicy
	// ShardAttempts bounds re-dispatches of a shard a live worker reports
	// as failed before the job fails (default 3).
	ShardAttempts int
	// DisableDegraded fails the job instead of falling back to
	// in-process execution when no worker can be kept alive.
	DisableDegraded bool
	// Keep leaves the exchange directory's artifacts in place after a
	// successful run (default: cleared; a failed run always keeps them
	// for resume).
	Keep bool
	// Logf receives one structured line per recovery action.
	Logf func(format string, args ...any)
	// OnSpawn observes every worker process start (slot, pid) — the
	// chaos soak's random killer hooks it.
	OnSpawn func(worker, pid int)
}

// ShardReport describes what a RunSharded call did and predicted.
type ShardReport struct {
	// Shards and ShardSizes describe the partition; Workers is the
	// requested fleet size.
	Shards     int
	ShardSizes []int
	Workers    int
	// PredictedMicrosPerCt is the accelerator cost model's simulated time
	// for the program on one ciphertext; PredictedSpeedup is the
	// model-planned serial/sharded ratio for this partition and fleet.
	PredictedMicrosPerCt float64
	PredictedSpeedup     float64
	// Resumed counts shards whose intact outputs from a previous run were
	// accepted without recomputation.
	Resumed int
	// Stats are the supervisor's recovery counters.
	Stats SupervisorStats
}

// resolveWorkerCommand picks the worker argv: explicit option, then the
// BITPACKER_BPWORKER environment variable, then bpworker on PATH. Nil
// means no worker binary is available.
func resolveWorkerCommand(opts ShardOptions) []string {
	if len(opts.WorkerCommand) > 0 {
		return opts.WorkerCommand
	}
	if v := os.Getenv(shard.EnvWorkerBin); v != "" {
		return []string{v}
	}
	if p, err := exec.LookPath("bpworker"); err == nil {
		return []string{p}
	}
	return nil
}

// planShardProgram walks the program with the accelerator cost model
// (CraterLake-class configuration at the context's word size), tracking
// the residue count across rescales, and returns the simulated
// per-ciphertext microseconds.
func (c *Context) planShardProgram(program []ShardStep, r int) float64 {
	cfg := accel.CraterLake(c.cfg.WordBits)
	dnum := c.cfg.KeySwitchDigits
	atLeast1 := func(v int) int {
		if v < 1 {
			return 1
		}
		return v
	}
	var micros float64
	for _, st := range program {
		r = atLeast1(r)
		switch st.Op {
		case ShardOpSquare:
			micros += accel.HMulMicros(cfg, r, dnum) + accel.RescaleMicros(cfg, r, 0, 1)
			r--
		case ShardOpQuartic:
			micros += accel.HMulMicros(cfg, r, dnum) + accel.RescaleMicros(cfg, r, 0, 1)
			r = atLeast1(r - 1)
			micros += accel.HMulMicros(cfg, r, dnum) + accel.RescaleMicros(cfg, r, 0, 1)
			r--
		case ShardOpNegate:
			micros += accel.HAddMicros(cfg, r) / 2
		case ShardOpOffset:
			micros += accel.PAddMicros(cfg, r)
		case ShardOpScale:
			micros += accel.PMulMicros(cfg, r) + accel.RescaleMicros(cfg, r, 0, 1)
			r--
		case ShardOpRotate:
			micros += accel.HRotMicros(cfg, r, dnum)
		}
	}
	return micros
}

// planSpeedup is the model's serial/sharded ratio: serial time over the
// makespan of a greedy longest-first assignment of shard loads to the
// effective worker count.
func planSpeedup(sizes []int, workers int) float64 {
	if workers > len(sizes) {
		workers = len(sizes)
	}
	if workers < 1 {
		workers = 1
	}
	loads := make([]int, workers)
	total := 0
	// Contiguous equal-size chunks: plain round-robin is the greedy
	// assignment.
	for i, sz := range sizes {
		loads[i%workers] += sz
		total += sz
	}
	max := 0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return 1
	}
	return float64(total) / float64(max)
}

// clearExchange removes a stale job's artifacts from an exchange
// directory.
func clearExchange(dir string) error {
	for _, sub := range []string{shard.InDir(dir), shard.OutDir(dir), filepath.Join(dir, "ckpt"), shard.ChaosDir(dir)} {
		if err := os.RemoveAll(sub); err != nil {
			return err
		}
	}
	if err := os.Remove(filepath.Join(dir, "job.json")); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// RunSharded executes a declarative program over a ciphertext batch
// across supervised worker processes, surviving worker crashes and
// hangs: the batch is partitioned into shards, each shard's input is
// durably published through the checkpoint store, workers lease shards
// and checkpoint every step, and a dead worker's shards are
// re-dispatched to survivors from their last durable checkpoint. The
// result is bit-identical to running the program in-process. See
// DESIGN.md "Sharded execution & supervision" for the failure matrix.
func (c *Context) RunSharded(ctx context.Context, program []ShardStep, inputs []*Ciphertext, opts ShardOptions) ([]*Ciphertext, ShardReport, error) {
	report := ShardReport{}
	if len(program) == 0 {
		return nil, report, fherr.Wrap(fherr.ErrInvalidParams, "bitpacker: sharded job with no program")
	}
	for i, st := range program {
		if !ValidShardOp(st.Op) {
			return nil, report, fherr.Wrap(fherr.ErrInvalidParams, "bitpacker: shard program step %d: unknown op %q", i, st.Op)
		}
	}
	if len(inputs) == 0 {
		return nil, report, fherr.Wrap(fherr.ErrInvalidParams, "bitpacker: sharded job with no inputs")
	}
	if ctx == nil {
		ctx = c.opCtx()
	}

	workers := opts.Workers
	if workers <= 0 {
		if len(opts.Addrs) > 0 {
			workers = len(opts.Addrs)
		} else {
			workers = 2
		}
	}
	dir := opts.Dir
	temp := false
	if dir == "" {
		td, err := os.MkdirTemp("", "bpshard-")
		if err != nil {
			return nil, report, fmt.Errorf("bitpacker: shard exchange dir: %w", err)
		}
		dir, temp = td, true
		defer os.RemoveAll(td)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, report, fmt.Errorf("bitpacker: shard exchange dir: %w", err)
	}

	// Partition into contiguous shards.
	shardSize := opts.ShardSize
	if shardSize <= 0 {
		shardSize = len(inputs) / (4 * workers)
		if shardSize < 1 {
			shardSize = 1
		}
	}
	var chunks [][]*Ciphertext
	for at := 0; at < len(inputs); at += shardSize {
		end := at + shardSize
		if end > len(inputs) {
			end = len(inputs)
		}
		chunks = append(chunks, inputs[at:end])
	}
	total := len(chunks)
	report.Shards = total
	report.Workers = workers
	sizes := make([]int, total)
	blobs := make([][]byte, total)
	for i, chunk := range chunks {
		sizes[i] = len(chunk)
		blob, err := c.EncodeCiphertexts(chunk)
		if err != nil {
			return nil, report, err
		}
		blobs[i] = blob
	}
	report.ShardSizes = sizes
	report.PredictedMicrosPerCt = c.planShardProgram(program, inputs[0].Residues())
	report.PredictedSpeedup = planSpeedup(sizes, workers)

	cfgJSON, err := json.Marshal(c.cfg)
	if err != nil {
		return nil, report, fmt.Errorf("bitpacker: marshal config: %w", err)
	}
	progJSON, err := json.Marshal(program)
	if err != nil {
		return nil, report, fmt.Errorf("bitpacker: marshal program: %w", err)
	}
	h := fnv.New64a()
	h.Write(cfgJSON)
	h.Write(progJSON)
	for _, b := range blobs {
		h.Write(b)
	}
	fingerprint := h.Sum64()

	// A different job's leftovers in the exchange directory must not be
	// mistaken for resumable state.
	if prev, err := shard.ReadJobFile(dir); err == nil {
		if prev.Fingerprint != fingerprint {
			if err := clearExchange(dir); err != nil {
				return nil, report, fmt.Errorf("bitpacker: clear stale exchange dir: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		// Unreadable or wrong-version job file: same treatment.
		if err := clearExchange(dir); err != nil {
			return nil, report, fmt.Errorf("bitpacker: clear stale exchange dir: %w", err)
		}
	}

	// Publish inputs (always rewritten: heals a corrupted input file from
	// a previous attempt) and the job description.
	inStore, err := pipeline.NewDirStore(shard.InDir(dir))
	if err != nil {
		return nil, report, err
	}
	outStore, err := pipeline.NewDirStore(shard.OutDir(dir))
	if err != nil {
		return nil, report, err
	}
	for i, blob := range blobs {
		if err := inStore.Put(i, fmt.Sprintf("shard-%d", i), blob); err != nil {
			return nil, report, err
		}
	}
	engineWorkers := opts.EngineWorkers
	if engineWorkers <= 0 {
		engineWorkers = runtime.NumCPU() / workers
		if engineWorkers < 1 {
			engineWorkers = 1
		}
	}
	if err := shard.WriteJobFile(dir, shard.JobFile{
		Version:       shard.JobFileVersion,
		Fingerprint:   fingerprint,
		Config:        cfgJSON,
		Program:       progJSON,
		Shards:        sizes,
		EngineWorkers: engineWorkers,
	}); err != nil {
		return nil, report, err
	}

	// Collect results as shards complete; accept intact outputs left by a
	// previous run up front. The epoch check is the fencing half of
	// output validation: a durable output whose stamp is not the epoch
	// the supervisor dispatched was written by a zombie holding a broken
	// lease and must be rejected even if its checksum and contents are
	// intact. epoch < 0 (the resume scan) accepts any stamp — a finished
	// shard from a previous run is valid whatever lease produced it.
	results := make([][]*Ciphertext, total)
	var resMu sync.Mutex
	collect := func(sh, epoch int) error {
		name, blob, err := outStore.Get(sh)
		if err != nil {
			return err
		}
		if epoch >= 0 && name != shard.OutputName(sh, epoch) {
			return fmt.Errorf("bitpacker: shard %d output stamped %q, want %q: %w",
				sh, name, shard.OutputName(sh, epoch), shard.ErrStaleEpoch)
		}
		cts, err := c.DecodeCiphertexts(blob)
		if err != nil {
			return err
		}
		if len(cts) != sizes[sh] {
			return fherr.Wrap(fherr.ErrInvariant, "bitpacker: shard %d output has %d ciphertexts, want %d", sh, len(cts), sizes[sh])
		}
		resMu.Lock()
		results[sh] = cts
		resMu.Unlock()
		return nil
	}
	preDone := make([]bool, total)
	if stages, err := outStore.Stages(); err == nil {
		for _, sh := range stages {
			if sh < total && collect(sh, -1) == nil {
				preDone[sh] = true
				report.Resumed++
			}
		}
	}

	stats, err := shard.Run(ctx, shard.Options{
		Dir:               dir,
		Workers:           workers,
		WorkerCommand:     resolveWorkerCommand(opts),
		WorkerEnv:         opts.WorkerEnv,
		Addrs:             opts.Addrs,
		Fingerprint:       fingerprint,
		HeartbeatInterval: opts.HeartbeatInterval,
		HeartbeatTimeout:  opts.HeartbeatTimeout,
		ShardDeadline:     opts.ShardDeadline,
		Respawn:           opts.Respawn,
		ShardAttempts:     opts.ShardAttempts,
		DisableDegraded:   opts.DisableDegraded,
		Logf:              opts.Logf,
		OnSpawn:           opts.OnSpawn,
	}, total, preDone, shard.Callbacks{
		ShardDone: collect,
		HealInput: func(sh int) error {
			return inStore.Put(sh, fmt.Sprintf("shard-%d", sh), blobs[sh])
		},
		ExecLocal: func(ctx context.Context, sh, epoch int) error {
			if err := c.ExecShard(ctx, dir, sh, epoch, program, nil); err != nil {
				return err
			}
			return collect(sh, epoch)
		},
	})
	report.Stats = stats
	if err != nil {
		return nil, report, err
	}

	out := make([]*Ciphertext, 0, len(inputs))
	for sh := 0; sh < total; sh++ {
		if results[sh] == nil {
			return nil, report, fherr.Wrap(fherr.ErrInvariant, "bitpacker: shard %d reported done without a collected result", sh)
		}
		out = append(out, results[sh]...)
	}
	if !temp && !opts.Keep {
		if err := clearExchange(dir); err != nil {
			return out, report, fmt.Errorf("bitpacker: clear exchange dir after success: %w", err)
		}
	}
	return out, report, nil
}
