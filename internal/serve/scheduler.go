package serve

import (
	"fmt"
	"sync"
	"time"

	"bitpacker"
)

// Ops the eval endpoint accepts. square and negate are uniform across a
// batch; scale and offset take a per-tenant argument, combined into one
// plaintext vector at evaluation time (each tenant's slot window carries
// its own constant).
const (
	OpSquare  = "square"  // x -> x*x (MulRescale; consumes one level)
	OpQuartic = "quartic" // x -> x^4 (two MulRescales; consumes two levels)
	OpScale   = "scale"   // x -> arg*x (MulConst+Rescale; consumes one level)
	OpOffset  = "offset"  // x -> x+arg (AddConst; level-neutral)
	OpNegate  = "negate"  // x -> -x (level-neutral)
)

// validOp reports whether op is one the scheduler evaluates.
func validOp(op string) bool {
	switch op {
	case OpSquare, OpQuartic, OpScale, OpOffset, OpNegate:
		return true
	}
	return false
}

// evalRequest is one tenant's unit of work queued at the scheduler.
type evalRequest struct {
	tenant *tenant
	op     string
	arg    float64
	ct     *bitpacker.Ciphertext
	level  int
	scale  float64 // ScaleLog2, the packing compatibility key
	done   chan evalOutcome
}

// evalOutcome is the scheduler's answer to one request.
type evalOutcome struct {
	ct     *bitpacker.Ciphertext
	packed bool // rode a shared packed evaluation
	err    error
}

// SchedStats counts what the scheduler actually did.
type SchedStats struct {
	Submitted     int64 `json:"submitted"`      // requests accepted into the queue
	Rejected      int64 `json:"rejected"`       // requests bounced with ErrBusy (HTTP 429)
	PackedBatches int64 `json:"packed_batches"` // shared evaluations performed
	PackedReqs    int64 `json:"packed_reqs"`    // requests served by shared evaluations
	SoloEvals     int64 `json:"solo_evals"`     // requests evaluated one-per-ciphertext
	Fallbacks     int64 `json:"fallbacks"`      // packed batches that failed and re-ran solo
	MaxBatch      int64 `json:"max_batch"`      // largest batch coalesced so far
}

// scheduler owns a profile's bounded request queue and the slot-packing
// batch loop: compatible small requests (same op, level, and scale,
// distinct slot windows) coalesce into one shared ciphertext — pack via
// homomorphic adds, evaluate once, then extract each tenant's window
// with hoisted masking rotations whose keys are pinned in the key cache
// for exactly the life of the batch.
type scheduler struct {
	p     *profile
	queue chan *evalRequest

	mu      sync.Mutex
	closed  bool
	stats   SchedStats
	pending []*evalRequest // stashed incompatible requests, next batch's seeds

	// masks caches the [0, Window) extraction mask pre-encoded per
	// level: the vector never changes, so each level pays its encode
	// transform exactly once instead of once per request.
	masks map[int]*bitpacker.Plain

	wg sync.WaitGroup
}

func newScheduler(p *profile) *scheduler {
	s := &scheduler{p: p, queue: make(chan *evalRequest, p.cfg.QueueDepth), masks: map[int]*bitpacker.Plain{}}
	s.wg.Add(1)
	go s.run()
	return s
}

// Submit queues one request, never blocking: a full queue is the
// backpressure signal (ErrBusy → HTTP 429 + Retry-After), not a place
// to park goroutines. Requests the batch loop stashed as incompatible
// count toward the depth — otherwise the collect loop would drain the
// queue into the stash and the bound would never bind.
func (s *scheduler) Submit(r *evalRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShutdown
	}
	if len(s.pending)+len(s.queue) >= s.p.cfg.QueueDepth {
		s.stats.Rejected++
		return ErrBusy
	}
	select {
	case s.queue <- r:
		s.stats.Submitted++
		return nil
	default:
		s.stats.Rejected++
		return ErrBusy
	}
}

// Stats snapshots the scheduler's counters.
func (s *scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops intake, drains the queue (queued requests still get
// evaluated — shutdown is clean, not lossy), and waits for the loop.
func (s *scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// nextRequest yields the oldest stashed request, else blocks on the
// queue. nil means the queue is closed and fully drained.
func (s *scheduler) nextRequest() *evalRequest {
	s.mu.Lock()
	if len(s.pending) > 0 {
		r := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()
	r, ok := <-s.queue
	if !ok {
		return nil
	}
	return r
}

// compatible reports whether r can ride in a batch seeded by batch[0]:
// same op, level and scale (so the packed adds and the single shared
// evaluation are well-defined) and a slot window no batch member
// already occupies (so extraction windows never collide).
func compatible(batch []*evalRequest, r *evalRequest) bool {
	head := batch[0]
	if r.op != head.op || r.level != head.level || r.scale != head.scale {
		return false
	}
	for _, b := range batch {
		if b.tenant.window == r.tenant.window {
			return false
		}
	}
	return true
}

// run is the batch loop: seed a batch, collect compatible requests
// until MaxBatch or the flush deadline, evaluate, repeat.
func (s *scheduler) run() {
	defer s.wg.Done()
	for {
		first := s.nextRequest()
		if first == nil {
			s.drainPending()
			return
		}
		batch := []*evalRequest{first}
		if s.p.cfg.Packing && s.p.cfg.MaxBatch > 1 {
			deadline := time.NewTimer(s.p.cfg.FlushInterval)
		collect:
			for len(batch) < s.p.cfg.MaxBatch {
				// Favor stashed requests left over from earlier batches.
				s.mu.Lock()
				took := false
				for i, r := range s.pending {
					if compatible(batch, r) {
						batch = append(batch, r)
						s.pending = append(s.pending[:i], s.pending[i+1:]...)
						took = true
						break
					}
				}
				s.mu.Unlock()
				if took {
					continue
				}
				select {
				case r, ok := <-s.queue:
					if !ok {
						break collect
					}
					if compatible(batch, r) {
						batch = append(batch, r)
					} else {
						s.mu.Lock()
						s.pending = append(s.pending, r)
						s.mu.Unlock()
					}
				case <-deadline.C:
					break collect
				}
			}
			deadline.Stop()
		}
		s.evalBatch(batch)
	}
}

// drainPending answers any stashed requests after the queue closes:
// requests that were stashed as incompatible and never seeded a batch
// still get evaluated — shutdown is clean, not lossy.
func (s *scheduler) drainPending() {
	for {
		s.mu.Lock()
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		r := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.evalBatch([]*evalRequest{r})
	}
}

// evalBatch routes a batch: packed when it genuinely coalesced, solo
// otherwise. A packed failure falls back to per-request solo evaluation
// so one tenant's fault (a poisoned ciphertext, an injected engine
// fault that survived retry) cannot poison its batch-mates.
func (s *scheduler) evalBatch(batch []*evalRequest) {
	if len(batch) == 1 || !s.p.cfg.Packing {
		for _, r := range batch {
			s.evalSolo(r)
		}
		return
	}
	if err := s.evalPacked(batch); err != nil {
		s.mu.Lock()
		s.stats.Fallbacks++
		s.mu.Unlock()
		for _, r := range batch {
			s.evalSolo(r)
		}
		return
	}
	s.mu.Lock()
	s.stats.PackedBatches++
	s.stats.PackedReqs += int64(len(batch))
	if int64(len(batch)) > s.stats.MaxBatch {
		s.stats.MaxBatch = int64(len(batch))
	}
	s.mu.Unlock()
}

// applyOp performs the batch's single shared evaluation (also the solo
// path, with a one-element batch). For the per-tenant-argument ops the
// constant vector is combined: each request's slot window carries that
// tenant's own argument.
func (s *scheduler) applyOp(ct *bitpacker.Ciphertext, batch []*evalRequest) (*bitpacker.Ciphertext, error) {
	fhe := s.p.ctx
	switch batch[0].op {
	case OpSquare:
		return fhe.MulRescale(ct, ct)
	case OpQuartic:
		sq, err := fhe.MulRescale(ct, ct)
		if err != nil {
			return nil, err
		}
		return fhe.MulRescale(sq, sq)
	case OpNegate:
		return fhe.Neg(ct)
	case OpScale:
		out, err := fhe.MulConst(ct, s.combined(batch))
		if err != nil {
			return nil, err
		}
		return fhe.Rescale(out)
	case OpOffset:
		return fhe.AddConst(ct, s.combined(batch))
	}
	return nil, fmt.Errorf("serve: unknown op %q", batch[0].op)
}

// combined builds the per-tenant-argument plaintext vector: arg in each
// request's window, zero elsewhere.
func (s *scheduler) combined(batch []*evalRequest) []complex128 {
	vec := make([]complex128, s.p.ctx.Slots())
	w := s.p.cfg.Window
	for _, r := range batch {
		base := r.tenant.window * w
		for i := 0; i < w; i++ {
			vec[base+i] = complex(r.arg, 0)
		}
	}
	return vec
}

// extract rotates the tenant's window to slot 0 and masks [0, Window):
// the response always carries the tenant's result in its first Window
// slots regardless of which window it rode in, and co-tenant slots are
// zeroed before anything leaves the scheduler.
func (s *scheduler) extract(ct *bitpacker.Ciphertext, windowStart int) (*bitpacker.Ciphertext, error) {
	fhe := s.p.ctx
	if windowStart != 0 {
		var err error
		if ct, err = fhe.Rotate(ct, windowStart); err != nil {
			return nil, err
		}
	}
	return s.mask(ct)
}

// mask zeroes every slot outside [0, Window).
func (s *scheduler) mask(ct *bitpacker.Ciphertext) (*bitpacker.Ciphertext, error) {
	fhe := s.p.ctx
	pl, err := s.maskPlain(ct.Level())
	if err != nil {
		return nil, err
	}
	out, err := fhe.MulPlain(ct, pl)
	if err != nil {
		return nil, err
	}
	return fhe.Rescale(out)
}

// maskPlain returns the extraction mask pre-encoded for the level.
func (s *scheduler) maskPlain(level int) (*bitpacker.Plain, error) {
	s.mu.Lock()
	if pl, ok := s.masks[level]; ok {
		s.mu.Unlock()
		return pl, nil
	}
	s.mu.Unlock()
	fhe := s.p.ctx
	vec := make([]complex128, fhe.Slots())
	for i := 0; i < s.p.cfg.Window; i++ {
		vec[i] = 1
	}
	pl, err := fhe.EncodePlain(vec, level)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.masks[level] = pl
	s.mu.Unlock()
	return pl, nil
}

// evalSolo is the one-request-per-ciphertext path: evaluate, then run
// the identical extraction pipeline the packed path uses, so the two
// paths are directly comparable (and the property test can hold them
// to each other).
func (s *scheduler) evalSolo(r *evalRequest) {
	out, err := s.applyOp(r.ct, []*evalRequest{r})
	if err == nil {
		out, err = s.extract(out, r.tenant.window*s.p.cfg.Window)
	}
	s.mu.Lock()
	s.stats.SoloEvals++
	s.mu.Unlock()
	r.done <- evalOutcome{ct: out, err: err}
}

// evalPacked is the slot-packing fast path: pack the batch into one
// shared ciphertext with homomorphic adds, evaluate once, then extract
// every tenant's window via hoisted rotations (one shared ModUp) whose
// Galois keys are pinned in the key cache for the life of the batch.
func (s *scheduler) evalPacked(batch []*evalRequest) error {
	fhe := s.p.ctx
	packed := batch[0].ct
	for _, r := range batch[1:] {
		var err error
		if packed, err = fhe.Add(packed, r.ct); err != nil {
			return err
		}
	}
	result, err := s.applyOp(packed, batch)
	if err != nil {
		return err
	}
	w := s.p.cfg.Window
	steps := make([]int, len(batch))
	for i, r := range batch {
		steps[i] = r.tenant.window * w
	}
	// Pin the batch's rotation working set: the keys stream in (or
	// promote from compressed) once and stay resident — LRU-pinned —
	// exactly while this batch is in flight.
	release, err := fhe.PinRotations(steps...)
	if err != nil {
		return err
	}
	defer release()
	rotated, err := fhe.RotateHoisted(result, steps)
	if err != nil {
		return err
	}
	outs := make([]*bitpacker.Ciphertext, len(batch))
	for i := range batch {
		if outs[i], err = s.mask(rotated[i]); err != nil {
			return err
		}
	}
	for i, r := range batch {
		r.done <- evalOutcome{ct: outs[i], packed: true}
	}
	return nil
}

// Eval is the synchronous front door the HTTP layer calls: validate,
// submit, wait. The scheduler always answers every accepted request, so
// the wait needs no timeout of its own.
func (p *profile) Eval(tenantName, op string, arg float64, ct *bitpacker.Ciphertext) (*bitpacker.Ciphertext, bool, error) {
	if !validOp(op) {
		return nil, false, fmt.Errorf("serve: unknown op %q", op)
	}
	t, err := p.lookup(tenantName)
	if err != nil {
		return nil, false, err
	}
	r := &evalRequest{
		tenant: t,
		op:     op,
		arg:    arg,
		ct:     ct,
		level:  ct.Level(),
		scale:  ct.ScaleLog2(),
		done:   make(chan evalOutcome, 1),
	}
	if err := p.sched.Submit(r); err != nil {
		return nil, false, err
	}
	out := <-r.done
	return out.ct, out.packed, out.err
}
