package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"bitpacker"
)

// BenchRecord is one machine-readable microbenchmark result, written by
// the -json flag so external tooling (plotting, regression tracking) can
// consume host-kernel timings without scraping `go test -bench` output.
type BenchRecord struct {
	Op       string  `json:"op"`
	Scheme   string  `json:"scheme"`
	WordBits int     `json:"word_bits"`
	LogN     int     `json:"log_n"`
	Residues int     `json:"residues"`
	Workers  int     `json:"workers"`
	NsPerOp  float64 `json:"ns_per_op"`
	Iters    int     `json:"iters"`
}

// timeOp runs fn repeatedly until it has accumulated enough wall time for
// a stable estimate and returns ns/op with the iteration count used.
func timeOp(fn func()) (float64, int) {
	const (
		minDuration = 200 * time.Millisecond
		maxIters    = 1 << 16
	)
	fn() // warm up pools, NTT tables, conversion caches
	var (
		iters   int
		elapsed time.Duration
	)
	for elapsed < minDuration && iters < maxIters {
		n := 1
		if elapsed > 0 {
			// Estimate how many more iterations reach minDuration.
			per := elapsed / time.Duration(iters)
			n = int((minDuration - elapsed) / per)
			if n < 1 {
				n = 1
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed += time.Since(start)
		iters += n
	}
	return float64(elapsed.Nanoseconds()) / float64(iters), iters
}

// runMicrobench times the host-library hot ops (ciphertext multiply +
// rescale, level adjust) for both representations at the accelerator- and
// CPU-favored word sizes, and writes the records as JSON to path.
func runMicrobench(path string) error {
	const (
		logN      = 12
		levels    = 6
		scaleBits = 45
	)
	var records []BenchRecord
	for _, w := range []int{28, 61} {
		for _, scheme := range []bitpacker.Scheme{bitpacker.RNSCKKS, bitpacker.BitPacker} {
			ctx, err := bitpacker.New(bitpacker.Config{
				Scheme:    scheme,
				LogN:      logN,
				Levels:    levels,
				ScaleBits: scaleBits,
				WordBits:  w,
			})
			if err != nil {
				return fmt.Errorf("bench setup (%v, w=%d): %w", scheme, w, err)
			}
			ct, err := ctx.EncryptReal([]float64{0.5, 0.25})
			if err != nil {
				return fmt.Errorf("bench encrypt (%v, w=%d): %w", scheme, w, err)
			}
			base := BenchRecord{
				Scheme:   scheme.String(),
				WordBits: w,
				LogN:     logN,
				Residues: ct.Residues(),
				Workers:  bitpacker.Workers(),
			}

			rec := base
			rec.Op = "MulRescale"
			rec.NsPerOp, rec.Iters = timeOp(func() { _ = ctx.MustRescale(ctx.MustMul(ct, ct)) })
			records = append(records, rec)
			fmt.Printf("  %-12s %-10s w=%-3d %12.0f ns/op (%d iters, %d workers)\n",
				rec.Op, rec.Scheme, rec.WordBits, rec.NsPerOp, rec.Iters, rec.Workers)

			rec = base
			rec.Op = "Adjust"
			rec.NsPerOp, rec.Iters = timeOp(func() { _ = ctx.MustAdjust(ct, ct.Level()-1) })
			records = append(records, rec)
			fmt.Printf("  %-12s %-10s w=%-3d %12.0f ns/op (%d iters, %d workers)\n",
				rec.Op, rec.Scheme, rec.WordBits, rec.NsPerOp, rec.Iters, rec.Workers)
		}
	}
	if err := benchRotateHoisted(&records); err != nil {
		return err
	}
	if err := benchLinearTransform(&records); err != nil {
		return err
	}
	if err := benchBootstrap(&records); err != nil {
		return err
	}
	if err := benchRRNSOverhead(&records); err != nil {
		return err
	}
	if err := benchRetryRecovery(&records); err != nil {
		return err
	}

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
	return nil
}

func printRecord(rec BenchRecord) {
	fmt.Printf("  %-22s %-10s w=%-3d %12.0f ns/op (%d iters, %d workers)\n",
		rec.Op, rec.Scheme, rec.WordBits, rec.NsPerOp, rec.Iters, rec.Workers)
}

// benchRotateHoisted times rotating one ciphertext eight ways with
// per-rotation keyswitching vs a single hoisted decomposition.
func benchRotateHoisted(records *[]BenchRecord) error {
	const (
		logN      = 11
		levels    = 3
		scaleBits = 40
		nRots     = 8
	)
	steps := make([]int, nRots)
	for i := range steps {
		steps[i] = i + 1
	}
	for _, scheme := range []bitpacker.Scheme{bitpacker.RNSCKKS, bitpacker.BitPacker} {
		ctx, err := bitpacker.New(bitpacker.Config{
			Scheme:    scheme,
			LogN:      logN,
			Levels:    levels,
			ScaleBits: scaleBits,
			WordBits:  61,
			Rotations: steps,
		})
		if err != nil {
			return fmt.Errorf("bench setup (%v): %w", scheme, err)
		}
		ct, err := ctx.EncryptReal([]float64{0.5, 0.25})
		if err != nil {
			return err
		}
		base := BenchRecord{
			Scheme:   scheme.String(),
			WordBits: 61,
			LogN:     logN,
			Residues: ct.Residues(),
			Workers:  bitpacker.Workers(),
		}

		rec := base
		rec.Op = fmt.Sprintf("Rotate x%d", nRots)
		rec.NsPerOp, rec.Iters = timeOp(func() {
			for _, s := range steps {
				_ = ctx.MustRotate(ct, s)
			}
		})
		*records = append(*records, rec)
		printRecord(rec)

		rec = base
		rec.Op = fmt.Sprintf("RotateHoisted x%d", nRots)
		rec.NsPerOp, rec.Iters = timeOp(func() { _ = ctx.MustRotateHoisted(ct, steps) })
		*records = append(*records, rec)
		printRecord(rec)
	}
	return nil
}

// benchLinearTransform times a dense 16-diagonal matrix-vector product on
// the BSGS path against the naive per-diagonal reference — the
// CoeffToSlot-style kernel the hoisting work targets.
func benchLinearTransform(records *[]BenchRecord) error {
	const (
		logN      = 11
		levels    = 2
		scaleBits = 40
		dim       = 16
	)
	rots := make([]int, 0, dim-1)
	for r := 1; r < dim; r++ {
		rots = append(rots, r)
	}
	rng := rand.New(rand.NewPCG(11, 12))
	mat := make([][]complex128, dim)
	for i := range mat {
		mat[i] = make([]complex128, dim)
		for j := range mat[i] {
			mat[i][j] = complex(2*rng.Float64()-1, 0)
		}
	}
	vec := make([]complex128, dim)
	for i := range vec {
		vec[i] = complex(2*rng.Float64()-1, 0)
	}
	for _, scheme := range []bitpacker.Scheme{bitpacker.RNSCKKS, bitpacker.BitPacker} {
		ctx, err := bitpacker.New(bitpacker.Config{
			Scheme:    scheme,
			LogN:      logN,
			Levels:    levels,
			ScaleBits: scaleBits,
			WordBits:  61,
			Rotations: rots,
		})
		if err != nil {
			return fmt.Errorf("bench setup (%v): %w", scheme, err)
		}
		tr, err := ctx.NewMatrixTransform(mat, ctx.MaxLevel())
		if err != nil {
			return err
		}
		ct, err := ctx.Encrypt(ctx.Replicate(vec, dim))
		if err != nil {
			return err
		}
		naiveKS, activeKS := tr.KeySwitchCounts()
		base := BenchRecord{
			Scheme:   scheme.String(),
			WordBits: 61,
			LogN:     logN,
			Residues: ct.Residues(),
			Workers:  bitpacker.Workers(),
		}

		rec := base
		rec.Op = fmt.Sprintf("LinearTransformNaive d=%d ks=%d", dim, naiveKS)
		naiveNs, naiveIt := timeOp(func() { _ = ctx.MustApplyNaive(ct, tr) })
		rec.NsPerOp, rec.Iters = naiveNs, naiveIt
		*records = append(*records, rec)
		printRecord(rec)

		rec = base
		rec.Op = fmt.Sprintf("LinearTransformBSGS d=%d ks=%d", dim, activeKS)
		bsgsNs, bsgsIt := timeOp(func() { _ = ctx.MustApply(ct, tr) })
		rec.NsPerOp, rec.Iters = bsgsNs, bsgsIt
		*records = append(*records, rec)
		printRecord(rec)

		fmt.Printf("  -> BSGS speedup %.2fx (%v)\n", naiveNs/bsgsNs, scheme)
	}
	return nil
}

// benchBootstrap times a full functional bootstrap (ModRaise + CtS +
// EvalMod + StC) at toy demonstration parameters.
func benchBootstrap(records *[]BenchRecord) error {
	const (
		logN      = 8
		deg       = 7
		scaleBits = 40
	)
	levels := bitpacker.ChebyshevDepth(deg) + 3
	ctx, err := bitpacker.New(bitpacker.Config{
		Scheme:             bitpacker.BitPacker,
		LogN:               logN,
		Levels:             levels,
		ScaleBits:          scaleBits,
		WordBits:           61,
		QMinBits:           48,
		SparseSecretWeight: 3,
		Bootstrap:          &bitpacker.BootstrapOptions{KRange: 2, SineDegree: deg},
	})
	if err != nil {
		return fmt.Errorf("bench setup (bootstrap): %w", err)
	}
	ct, err := ctx.EncryptReal([]float64{0.5, 0.25})
	if err != nil {
		return err
	}
	exhausted := ctx.MustAdjust(ct, 0)
	rec := BenchRecord{
		Scheme:   bitpacker.BitPacker.String(),
		WordBits: 61,
		LogN:     logN,
		Residues: ct.Residues(),
		Workers:  bitpacker.Workers(),
		Op:       fmt.Sprintf("Bootstrap deg=%d", deg),
	}
	rec.NsPerOp, rec.Iters = timeOp(func() {
		if _, err := ctx.Refresh(exhausted); err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: bootstrap refresh failed: %v\n", err)
			os.Exit(1)
		}
	})
	*records = append(*records, rec)
	printRecord(rec)
	return nil
}
