// Encrypted neural-network layer: y = ReLU-ish(W·x) where x is an
// encrypted activation vector, W a plaintext weight matrix applied with
// the diagonal method (the same primitive CKKS bootstrapping and FHE
// convolutions use), and the activation a degree-2 polynomial (AESPA
// style: x^2 trained in place of ReLU).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bitpacker"
)

func main() {
	const dim = 16

	rotations := make([]int, 0, dim-1)
	for d := 1; d < dim; d++ {
		rotations = append(rotations, d)
	}
	ctx, err := bitpacker.New(bitpacker.Config{
		Scheme:    bitpacker.BitPacker,
		LogN:      12,
		Levels:    3, // 1 matvec + 1 activation + headroom
		ScaleBits: 40,
		WordBits:  28,
		Rotations: rotations,
		Seed:      99,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	weights := make([][]complex128, dim)
	for i := range weights {
		weights[i] = make([]complex128, dim)
		for j := range weights[i] {
			weights[i][j] = complex(rng.Float64()*0.4-0.2, 0)
		}
	}
	x := make([]complex128, dim)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, 0)
	}

	layer, err := ctx.NewMatrixTransform(weights, ctx.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}

	ct, err := ctx.Encrypt(ctx.Replicate(x, dim))
	if err != nil {
		log.Fatal(err)
	}

	pre := ctx.MustRescale(ctx.MustApply(ct, layer)) // W·x
	act := ctx.MustRescale(ctx.MustMul(pre, pre))    // AESPA degree-2 activation

	out, err := ctx.Decrypt(act)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("encrypted dense layer, dim=%d (BitPacker, w=28)\n", dim)
	fmt.Printf("%4s  %12s  %12s  %10s\n", "row", "encrypted", "exact", "|err|")
	maxErr := 0.0
	for i := 0; i < dim; i++ {
		want := complex(0, 0)
		for j := 0; j < dim; j++ {
			want += weights[i][j] * x[j]
		}
		want *= want // activation
		err := abs(real(out[i]) - real(want))
		if err > maxErr {
			maxErr = err
		}
		if i < 6 {
			fmt.Printf("%4d  %12.6f  %12.6f  %10.2e\n", i, real(out[i]), real(want), err)
		}
	}
	fmt.Printf("max |error| over %d rows: %.2e\n", dim, maxErr)
	fmt.Printf("levels: %d -> %d (1 matvec + 1 activation)\n", ctx.MaxLevel(), act.Level())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
