// Encrypted-by-encrypted dot product: both vectors are ciphertexts (e.g.
// two parties' private feature vectors), multiplied slotwise and folded
// with rotate-and-add. Demonstrates ciphertext-ciphertext multiplication,
// relinearization, and rotation keys through the public API.
package main

import (
	"fmt"
	"log"

	"bitpacker"
)

func main() {
	const n = 16

	rotations := []int{}
	for s := 1; s < n; s <<= 1 {
		rotations = append(rotations, s)
	}
	ctx, err := bitpacker.New(bitpacker.Config{
		Scheme:    bitpacker.BitPacker,
		LogN:      12,
		Levels:    3,
		ScaleBits: 40,
		WordBits:  36, // SHARP-like word size
		Rotations: rotations,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	a := make([]float64, n)
	b := make([]float64, n)
	want := 0.0
	for i := 0; i < n; i++ {
		a[i] = 0.1 + 0.05*float64(i)
		b[i] = 0.9 - 0.04*float64(i)
		want += a[i] * b[i]
	}

	ctA, err := ctx.EncryptReal(a)
	if err != nil {
		log.Fatal(err)
	}
	ctB, err := ctx.EncryptReal(b)
	if err != nil {
		log.Fatal(err)
	}

	prod := ctx.MustRescale(ctx.MustMul(ctA, ctB))
	for s := 1; s < n; s <<= 1 {
		prod = ctx.MustAdd(prod, ctx.MustRotate(prod, s))
	}

	out, err := ctx.DecryptReal(prod)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two-party encrypted dot product (BitPacker, w=36)")
	fmt.Printf("  <a,b> encrypted = %10.6f\n", out[0])
	fmt.Printf("  <a,b> exact     = %10.6f\n", want)
	fmt.Printf("  |error|         = %.2e\n", abs(out[0]-want))
	fmt.Printf("  ciphertext: %d residues at level %d\n", prod.Residues(), prod.Level())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
