// Encrypted logistic-regression inference (the paper's LogReg workload in
// miniature): scores an encrypted feature vector against plaintext weights
// using a degree-3 polynomial approximation of the sigmoid,
//
//	sigmoid(t) ≈ 0.5 + 0.197*t - 0.004*t^3   (HELR's approximation)
//
// entirely under encryption. The dot product uses rotate-and-add.
package main

import (
	"fmt"
	"log"
	"math"

	"bitpacker"
)

func main() {
	const features = 8 // power of two so rotate-and-add folds cleanly

	rotations := []int{}
	for s := 1; s < features; s <<= 1 {
		rotations = append(rotations, s)
	}
	ctx, err := bitpacker.New(bitpacker.Config{
		Scheme:    bitpacker.BitPacker,
		LogN:      12,
		Levels:    5, // 1 (dot product) + 2 (cube) + headroom
		ScaleBits: 35,
		WordBits:  28,
		Rotations: rotations,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A tiny trained model and a patient record (all values illustrative).
	weights := []float64{0.30, -0.22, 0.15, 0.08, -0.12, 0.25, -0.05, 0.10}
	sample := []float64{0.9, 0.1, 0.7, 0.3, 0.2, 0.8, 0.5, 0.4}

	ct, err := ctx.EncryptReal(sample)
	if err != nil {
		log.Fatal(err)
	}

	// Dot product: elementwise multiply by the plaintext weights, then
	// rotate-and-add to fold the 8 partial products into slot 0.
	wv := make([]complex128, features)
	for i, w := range weights {
		wv[i] = complex(w, 0)
	}
	acc := ctx.MustRescale(ctx.MustMulConst(ct, wv))
	for s := 1; s < features; s <<= 1 {
		acc = ctx.MustAdd(acc, ctx.MustRotate(acc, s))
	}
	// acc slot 0 now holds t = <w, x>.

	// sigmoid(t) ≈ 0.5 + 0.197 t − 0.004 t^3.
	tSq := ctx.MustRescale(ctx.MustMul(acc, acc))
	tAligned := ctx.MustAdjust(acc, tSq.Level())
	tCube := ctx.MustRescale(ctx.MustMul(tSq, tAligned))

	cub := ctx.MustRescale(ctx.MustMulConst(tCube, constVec(-0.004, ctx.Slots())))
	lin := ctx.MustRescale(ctx.MustMulConst(acc, constVec(0.197, ctx.Slots())))
	lin = ctx.MustAdjust(lin, cub.Level())
	scoreCt := ctx.MustAddConst(ctx.MustAdd(lin, cub), constVec(0.5, ctx.Slots()))

	out, err := ctx.DecryptReal(scoreCt)
	if err != nil {
		log.Fatal(err)
	}

	// Reference computation in the clear.
	t := 0.0
	for i := range weights {
		t += weights[i] * sample[i]
	}
	approx := 0.5 + 0.197*t - 0.004*t*t*t
	exact := 1 / (1 + math.Exp(-t))

	fmt.Printf("encrypted dot product + degree-3 sigmoid (BitPacker, w=28)\n")
	fmt.Printf("  t = <w,x>              = %8.5f\n", t)
	fmt.Printf("  encrypted score        = %8.5f\n", out[0])
	fmt.Printf("  plaintext poly approx  = %8.5f  (|err| %.2e)\n", approx, math.Abs(out[0]-approx))
	fmt.Printf("  true sigmoid           = %8.5f\n", exact)
	fmt.Printf("  levels consumed        = %d of %d\n", ctx.MaxLevel()-scoreCt.Level(), ctx.MaxLevel())
}

func constVec(v float64, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(v, 0)
	}
	return out
}
