package rns

import (
	"math/big"
	"sync"

	"bitpacker/internal/engine"
	"bitpacker/internal/nt"
)

// vecPool recycles the length-N scratch vectors Convert and Apply need.
// Vectors are matched by capacity, so one process-wide pool serves every
// basis size in play.
var vecPool sync.Pool

func getVec(n int) []uint64 {
	if p, _ := vecPool.Get().(*[]uint64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint64, n)
}

func putVec(v []uint64) {
	vecPool.Put(&v)
}

// Conv is a precomputed approximate RNS basis conversion from a source
// basis {p_0..p_{k-1}} (product P) to a target modulus set {t_0..t_{m-1}}.
//
// Given residues x_i = x mod p_i of an integer x in [0, P), Convert
// produces, for each target modulus t_j, the value
//
//	( Σ_i [x_i · (P/p_i)^{-1}]_{p_i} · (P/p_i) )  mod t_j
//
// which equals (x + e·P) mod t_j for some 0 ≤ e < k. This is the standard
// fast (approximate) basis extension of Bajard et al. / Halevi-Polyakov-
// Shoup; the small e·P overshoot is absorbed by the noise analysis.
// It is the computational core of the paper's scaleDown (Listing 5) and of
// hybrid keyswitching's ModUp: each application is k·m polynomial
// multiply-accumulates, exactly the work the CraterLake CRB unit performs.
type Conv struct {
	Src []uint64 // source moduli
	Dst []uint64 // target moduli
	P   *big.Int // product of source moduli

	pHatInv   []uint64 // [(P/p_i)^{-1}]_{p_i}
	pHatInvSh []uint64
	mat       [][]uint64 // mat[i][j] = (P/p_i) mod t_j
	matSh     [][]uint64
}

// NewConv precomputes a conversion from the src moduli to the dst moduli.
// src and dst must each consist of distinct primes; they may overlap only
// if the caller knows what it is doing (scaleDown never overlaps them).
func NewConv(src, dst []uint64) *Conv {
	c := &Conv{
		Src: append([]uint64(nil), src...),
		Dst: append([]uint64(nil), dst...),
		P:   big.NewInt(1),
	}
	for _, p := range src {
		c.P.Mul(c.P, new(big.Int).SetUint64(p))
	}
	c.pHatInv = make([]uint64, len(src))
	c.pHatInvSh = make([]uint64, len(src))
	c.mat = make([][]uint64, len(src))
	c.matSh = make([][]uint64, len(src))
	tmp := new(big.Int)
	for i, p := range src {
		pHat := new(big.Int).Div(c.P, tmp.SetUint64(p))
		r := new(big.Int).Mod(pHat, tmp.SetUint64(p)).Uint64()
		c.pHatInv[i] = nt.InvMod(r, p)
		c.pHatInvSh[i] = nt.ShoupPrecomp(c.pHatInv[i], p)
		c.mat[i] = make([]uint64, len(dst))
		c.matSh[i] = make([]uint64, len(dst))
		for j, t := range dst {
			c.mat[i][j] = new(big.Int).Mod(pHat, tmp.SetUint64(t)).Uint64()
			c.matSh[i][j] = nt.ShoupPrecomp(c.mat[i][j], t)
		}
	}
	return c
}

// Convert performs the conversion on coefficient-domain residue vectors.
// src[i] holds the residues mod Src[i]; out[j] receives the converted
// residues mod Dst[j]. All vectors have length N. out must not alias src.
func (c *Conv) Convert(out, src [][]uint64) {
	if len(src) != len(c.Src) || len(out) != len(c.Dst) {
		panic("rns: Convert shape mismatch")
	}
	n := len(src[0])
	// y_i = [x_i * pHatInv_i]_{p_i} — independent per source residue.
	y := make([][]uint64, len(c.Src))
	for i := range y {
		y[i] = getVec(n)
	}
	engine.Dispatch(len(c.Src), n, func(i int) {
		p := c.Src[i]
		w, ws := c.pHatInv[i], c.pHatInvSh[i]
		yi := y[i]
		for k, x := range src[i] {
			yi[k] = nt.MulModShoup(x, w, ws, p)
		}
	})
	// out_j = Σ_i y_i * mat[i][j] mod t_j — independent per target
	// residue; the inner sum keeps its i-order, so results are identical
	// at every worker count.
	engine.Dispatch(len(out), n*len(y), func(j int) {
		t := c.Dst[j]
		oj := out[j]
		for k := range oj {
			oj[k] = 0
		}
		for i := range y {
			w, ws := c.mat[i][j], c.matSh[i][j]
			yi := y[i]
			for k := range oj {
				oj[k] = nt.AddMod(oj[k], nt.MulModShoup(yi[k], w, ws, t), t)
			}
		}
	})
	for i := range y {
		putVec(y[i])
	}
}

// ConvertScalar converts a single coefficient (residues xs over Src) to the
// target moduli. Used by tests and scalar precomputations.
func (c *Conv) ConvertScalar(xs []uint64) []uint64 {
	out := make([]uint64, len(c.Dst))
	for j, t := range c.Dst {
		var acc uint64
		for i, x := range xs {
			y := nt.MulModShoup(x, c.pHatInv[i], c.pHatInvSh[i], c.Src[i])
			acc = nt.AddMod(acc, nt.MulModShoup(y, c.mat[i][j], c.matSh[i][j], t), t)
		}
		out[j] = acc
	}
	return out
}

// ExactDiv is the precomputed state for the paper's scaleDown (Listing 5):
// dividing an RNS integer by P = Π shed moduli — flooring, up to a small
// additive error < k — and shedding those moduli.
//
// kept_j = (x_j − Conv_{shed→kept}(x mod P)_j) · P^{-1} mod q_j
type ExactDiv struct {
	Conv   *Conv    // shed -> kept conversion
	Kept   []uint64 // kept moduli (same as Conv.Dst)
	invP   []uint64 // P^{-1} mod q_j
	invPSh []uint64
}

// NewExactDiv precomputes division by the product of shed within a basis
// whose remaining moduli are kept.
func NewExactDiv(shed, kept []uint64) *ExactDiv {
	d := &ExactDiv{
		Conv: NewConv(shed, kept),
		Kept: append([]uint64(nil), kept...),
	}
	d.invP = make([]uint64, len(kept))
	d.invPSh = make([]uint64, len(kept))
	tmp := new(big.Int)
	for j, q := range kept {
		r := new(big.Int).Mod(d.Conv.P, tmp.SetUint64(q)).Uint64()
		d.invP[j] = nt.InvMod(r, q)
		d.invPSh[j] = nt.ShoupPrecomp(d.invP[j], q)
	}
	return d
}

// Apply computes the scaled-down residues. shedRes[i] are the
// coefficient-domain residues mod shed_i; keptRes[j] are the residues mod
// kept_j, updated in place.
func (d *ExactDiv) Apply(keptRes, shedRes [][]uint64) {
	n := len(shedRes[0])
	sub := make([][]uint64, len(d.Kept))
	for j := range sub {
		sub[j] = getVec(n)
	}
	d.Conv.Convert(sub, shedRes)
	engine.Dispatch(len(d.Kept), n, func(j int) {
		q := d.Kept[j]
		w, ws := d.invP[j], d.invPSh[j]
		kj, sj := keptRes[j], sub[j]
		for k := range kj {
			kj[k] = nt.MulModShoup(nt.SubMod(kj[k], sj[k], q), w, ws, q)
		}
	})
	for j := range sub {
		putVec(sub[j])
	}
}

// DivBatchTarget is one polynomial's worth of work for ApplyBatch.
type DivBatchTarget struct {
	Shed [][]uint64 // coefficient-domain residues mod Conv.Src (read-only)
	Kept [][]uint64 // residues mod Kept (read-only; Out may alias it)
	Out  [][]uint64 // receives the scaled-down rows
	// Epi, if non-nil, runs on each finished output row inside the same
	// work item (e.g. the NTT back to the evaluation domain), so the row
	// is transformed while still cache-resident.
	Epi func(j int, row []uint64)
}

// ApplyBatch runs Apply over several polynomials as two fork/joins total
// (instead of three per polynomial), and fuses the subtract-divide pass
// with each target's epilogue so every output row is written exactly
// once. The inner accumulation keeps Apply's i-order, so results are
// bit-identical to per-polynomial Apply calls at every worker count.
func (d *ExactDiv) ApplyBatch(targets []DivBatchTarget) {
	if len(targets) == 0 {
		return
	}
	c := d.Conv
	nSrc := len(c.Src)
	nKept := len(d.Kept)
	n := len(targets[0].Kept[0])
	// Stage A: y[t][i] = [shed_i · pHatInv_i]_{p_i}, all targets batched.
	y := make([][]uint64, len(targets)*nSrc)
	for i := range y {
		y[i] = getVec(n)
	}
	engine.Dispatch(len(y), n, func(ti int) {
		t, i := ti/nSrc, ti%nSrc
		p := c.Src[i]
		w, ws := c.pHatInv[i], c.pHatInvSh[i]
		yi := y[ti]
		for k, x := range targets[t].Shed[i] {
			yi[k] = nt.MulModShoup(x, w, ws, p)
		}
	})
	// Stage B: per kept row, accumulate the conversion in i-order,
	// subtract, divide by P, then run the fused epilogue — one write per
	// output word, no intermediate conversion buffer.
	engine.Dispatch(len(targets)*nKept, n*(nSrc+8), func(tj int) {
		t, j := tj/nKept, tj%nKept
		tgt := &targets[t]
		q := d.Kept[j]
		wp, wps := d.invP[j], d.invPSh[j]
		wcol := make([]uint64, nSrc)
		wscol := make([]uint64, nSrc)
		for i := 0; i < nSrc; i++ {
			wcol[i] = c.mat[i][j]
			wscol[i] = c.matSh[i][j]
		}
		yt := y[t*nSrc : (t+1)*nSrc]
		kj := tgt.Kept[j]
		oj := tgt.Out[j][:len(kj)]
		for k := range oj {
			var acc uint64
			for i := range yt {
				acc = nt.AddMod(acc, nt.MulModShoup(yt[i][k], wcol[i], wscol[i], q), q)
			}
			oj[k] = nt.MulModShoup(nt.SubMod(kj[k], acc, q), wp, wps, q)
		}
		if tgt.Epi != nil {
			tgt.Epi(j, oj)
		}
	})
	for i := range y {
		putVec(y[i])
	}
}

// ApplyBatchNTT is ApplyBatch for targets whose Kept and Out rows are in
// the NTT evaluation domain while the Shed rows stay in the coefficient
// domain: the conversion row is assembled in the coefficient domain
// (same i-ordered accumulation as ApplyBatch), moved to the evaluation
// domain by fwd — the caller's forward transform for kept modulus j —
// and the subtract-divide then runs pointwise on evaluation-domain
// words. The transform is exactly linear and emits canonical residues,
// and every operand here is canonical, so the outputs are bit-identical
// to coefficient-domain ApplyBatch sandwiched between inverse/forward
// transforms of the kept rows — but only the conversion rows are ever
// forward-transformed and the kept rows never leave the NTT domain.
func (d *ExactDiv) ApplyBatchNTT(targets []DivBatchTarget, fwd func(j int, row []uint64)) {
	if len(targets) == 0 {
		return
	}
	c := d.Conv
	nSrc := len(c.Src)
	nKept := len(d.Kept)
	n := len(targets[0].Kept[0])
	// Stage A: y[t][i] = [shed_i · pHatInv_i]_{p_i}, identical to
	// ApplyBatch (the shed rows are coefficient-domain in both variants).
	y := make([][]uint64, len(targets)*nSrc)
	for i := range y {
		y[i] = getVec(n)
	}
	engine.Dispatch(len(y), n, func(ti int) {
		t, i := ti/nSrc, ti%nSrc
		p := c.Src[i]
		w, ws := c.pHatInv[i], c.pHatInvSh[i]
		yi := y[ti]
		for k, x := range targets[t].Shed[i] {
			yi[k] = nt.MulModShoup(x, w, ws, p)
		}
	})
	// Stage B: per kept row, accumulate the conversion into a scratch
	// row (i-order preserved, so bits match Apply), forward-transform it,
	// then subtract-divide against the evaluation-domain kept row.
	engine.Dispatch(len(targets)*nKept, n*(nSrc+16), func(tj int) {
		t, j := tj/nKept, tj%nKept
		tgt := &targets[t]
		q := d.Kept[j]
		wp, wps := d.invP[j], d.invPSh[j]
		wcol := make([]uint64, nSrc)
		wscol := make([]uint64, nSrc)
		for i := 0; i < nSrc; i++ {
			wcol[i] = c.mat[i][j]
			wscol[i] = c.matSh[i][j]
		}
		yt := y[t*nSrc : (t+1)*nSrc]
		kj := tgt.Kept[j]
		conv := getVec(len(kj))
		for k := range conv {
			var acc uint64
			for i := range yt {
				acc = nt.AddMod(acc, nt.MulModShoup(yt[i][k], wcol[i], wscol[i], q), q)
			}
			conv[k] = acc
		}
		fwd(j, conv)
		oj := tgt.Out[j][:len(kj)]
		for k := range oj {
			oj[k] = nt.MulModShoup(nt.SubMod(kj[k], conv[k], q), wp, wps, q)
		}
		putVec(conv)
		if tgt.Epi != nil {
			tgt.Epi(j, oj)
		}
	})
	for i := range y {
		putVec(y[i])
	}
}

// ApplyScalar is the single-coefficient variant of Apply, for tests.
func (d *ExactDiv) ApplyScalar(kept, shed []uint64) []uint64 {
	sub := d.Conv.ConvertScalar(shed)
	out := make([]uint64, len(kept))
	for j, q := range d.Kept {
		out[j] = nt.MulModShoup(nt.SubMod(kept[j], sub[j], q), d.invP[j], d.invPSh[j], q)
	}
	return out
}
