package ckks

import (
	"bytes"
	"encoding/binary"
	"testing"

	"bitpacker/internal/core"
	"bitpacker/internal/ring"
)

func TestSwitchingKeySerialDense(t *testing.T) {
	s := newTestSetup(t, core.BitPacker, 2, 40, 61, 8, 4, nil)
	swk := s.kg.GenRelinKey(s.sk)
	blob, err := swk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSwitchingKey(s.params, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Compressed() {
		t.Fatal("dense key decoded compressed")
	}
	if !swkEqual(s, got, swk) {
		t.Fatal("dense round trip changed the key")
	}
}

func TestSwitchingKeySerialCompressed(t *testing.T) {
	s := newTestSetup(t, core.BitPacker, 2, 40, 61, 8, 4, nil)
	dense := s.kg.GenRelinKey(s.sk)
	denseBlob, err := dense.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	comp := cloneKey(dense)
	comp.Compress()
	blob, err := comp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > len(denseBlob)*55/100 {
		t.Fatalf("compressed blob %d bytes not ~half of dense %d", len(blob), len(denseBlob))
	}
	got, err := UnmarshalSwitchingKey(s.params, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compressed() {
		t.Fatal("compressed key decoded dense")
	}
	// The seeds are the A halves: decompressing must reproduce the dense
	// original bit for bit.
	if !swkEqual(s, got, dense) {
		t.Fatal("compressed round trip lost key material")
	}

	// A partially materialized key serializes compressed too (the dense
	// rows are redundant with the seeds).
	partial := cloneKey(dense)
	partial.A[0] = nil
	pblob, err := partial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pblob, blob) {
		t.Fatal("partially materialized key did not serialize as compressed")
	}
}

func TestEvaluationKeySetSerial(t *testing.T) {
	s := newTestSetup(t, core.BitPacker, 2, 40, 61, 8, 4, nil)
	ks := &EvaluationKeySet{
		Relin:  s.kg.GenRelinKey(s.sk),
		Galois: s.kg.GenRotationKeys(s.sk, []int{1, 3, -2}, true),
	}
	blob, err := ks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: equal sets serialize byte-identically regardless of
	// map iteration order.
	blob2, err := ks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("key-set serialization is not deterministic")
	}
	got, err := UnmarshalEvaluationKeySet(s.params, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !swkEqual(s, got.Relin, ks.Relin) {
		t.Fatal("relin key changed in round trip")
	}
	if len(got.Galois) != len(ks.Galois) {
		t.Fatalf("got %d galois keys, want %d", len(got.Galois), len(ks.Galois))
	}
	for el, want := range ks.Galois {
		if !swkEqual(s, got.Galois[el], want) {
			t.Fatalf("galois key %d changed in round trip", el)
		}
	}

	// Compressed set round-trips and still decompresses to the same bits.
	ks.Compress()
	cblob, err := ks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(cblob) >= len(blob) {
		t.Fatal("compressed set not smaller than dense set")
	}
	cgot, err := UnmarshalEvaluationKeySet(s.params, cblob)
	if err != nil {
		t.Fatal(err)
	}
	for el, want := range ks.Galois {
		if !swkEqual(s, cgot.Galois[el], want) {
			t.Fatalf("compressed galois key %d changed in round trip", el)
		}
	}

	// No relin: flag round-trips.
	noRelin := &EvaluationKeySet{Galois: ks.Galois}
	nblob, err := noRelin.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ngot, err := UnmarshalEvaluationKeySet(s.params, nblob)
	if err != nil {
		t.Fatal(err)
	}
	if ngot.Relin != nil {
		t.Fatal("relin key appeared from nowhere")
	}
}

func TestKeySerialErrors(t *testing.T) {
	s := newTestSetup(t, core.BitPacker, 2, 40, 61, 8, 4, nil)
	swk := s.kg.GenRelinKey(s.sk)
	blob, err := swk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalSwitchingKey(s.params, []byte("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := UnmarshalSwitchingKey(s.params, blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := UnmarshalSwitchingKey(s.params, append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[4] = 99 // version
	if _, err := UnmarshalSwitchingKey(s.params, bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Out-of-range residue: set a coefficient word to an impossible value.
	bad = append([]byte(nil), blob...)
	off := len(bad) - 8
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xff
	}
	if _, err := UnmarshalSwitchingKey(s.params, bad); err == nil {
		t.Fatal("out-of-range residue accepted")
	}
	// Wrong parameters (different dnum → different digit count).
	other := newTestSetup(t, core.BitPacker, 2, 40, 61, 8, 2, nil)
	if _, err := UnmarshalSwitchingKey(other.params, blob); err == nil {
		t.Fatal("key accepted under mismatched parameters")
	}

	// Malformed key refuses to marshal.
	if _, err := (&SwitchingKey{}).MarshalBinary(); err == nil {
		t.Fatal("empty key marshaled")
	}
	mixed := cloneKey(swk)
	mixed.B[0] = ring.NewPoly(s.params.Ctx, s.params.KeyBasis()[:1])
	if _, err := mixed.MarshalBinary(); err == nil {
		t.Fatal("basis-mismatched key marshaled")
	}

	// Key-set errors.
	ks := &EvaluationKeySet{Relin: swk, Galois: map[uint64]*SwitchingKey{}}
	ksBlob, err := ks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalEvaluationKeySet(s.params, ksBlob[:8]); err == nil {
		t.Fatal("truncated key set accepted")
	}
	if _, err := UnmarshalEvaluationKeySet(s.params, []byte("YYYYYY")); err == nil {
		t.Fatal("bad key-set magic accepted")
	}
}

// TestKeySerialHostileLengths: declared sizes inside key blobs are
// attacker-controlled once keys arrive over the network; sizes beyond the
// actual payload must fail cleanly without oversized allocations.
// Regression test for the sub-blob length fields being trusted.
func TestKeySerialHostileLengths(t *testing.T) {
	s := newTestSetup(t, core.BitPacker, 2, 40, 61, 8, 4, nil)
	swk := s.kg.GenRelinKey(s.sk)

	// A consistent switching-key header whose digit payload is short must
	// be rejected before allocating the digit polynomials.
	blob, err := swk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSwitchingKey(s.params, blob[:len(blob)-16]); err == nil {
		t.Fatal("short digit payload accepted")
	}

	// Key-set with a relin sub-blob declaring ~4 GiB on a tiny payload.
	ks := &EvaluationKeySet{Relin: swk, Galois: map[uint64]*SwitchingKey{}}
	ksBlob, err := ks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	hostile := append([]byte(nil), ksBlob...)
	const relinLenOff = 4 + 1 + 1 + 4 // magic|version|flags|count
	binary.LittleEndian.PutUint32(hostile[relinLenOff:], 0xFFFFFFF0)
	if _, err := UnmarshalEvaluationKeySet(s.params, hostile); err == nil {
		t.Fatal("hostile relin length accepted")
	}
	// Declared just past the remaining payload.
	binary.LittleEndian.PutUint32(hostile[relinLenOff:], uint32(len(ksBlob)))
	if _, err := UnmarshalEvaluationKeySet(s.params, hostile); err == nil {
		t.Fatal("overrunning relin length accepted")
	}
}
