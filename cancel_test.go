package bitpacker

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// stepCancelCtx cancels itself after a fixed number of Err() checks.
// The evaluator polls Err() at every operation prologue and the engine
// at every task claim, so a budget of k cancels deterministically after
// the k-th check — "mid-bootstrap" without sleeping on wall clock.
type stepCancelCtx struct {
	context.Context
	budget atomic.Int64
}

func newStepCancelCtx(checks int64) *stepCancelCtx {
	c := &stepCancelCtx{Context: context.Background()}
	c.budget.Store(checks)
	return c
}

func (c *stepCancelCtx) Err() error {
	if c.budget.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func bootstrapCtx(t *testing.T) *Context {
	t.Helper()
	ctx, err := New(Config{
		Scheme:             BitPacker,
		LogN:               8,
		Levels:             22,
		ScaleBits:          40,
		QMinBits:           48,
		WordBits:           61,
		SparseSecretWeight: 3,
		Bootstrap:          &BootstrapOptions{KRange: 2, SineDegree: 19},
		Seed:               7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestCancelThenResumePipeline cancels RunPipeline in the middle of a
// stage and asserts the full recovery contract: the failure surfaces as
// typed ErrCanceled (never laundered into ErrEngineFault — the key
// cache's A-regeneration dispatch sits on this path), no dispatch
// goroutine leaks, the completed stages' checkpoints survive, and a
// subsequent run resumes past them to a bit-identical final state.
func TestCancelThenResumePipeline(t *testing.T) {
	base, err := New(Config{
		Scheme:    BitPacker,
		LogN:      9,
		Levels:    3,
		ScaleBits: 40,
		QMinBits:  48,
		WordBits:  61,
		Seed:      9,
		// A tight budget keeps the stage keys bouncing through the
		// compressed state, so cancellation also exercises the cache's
		// promotion dispatch.
		KeyCacheBytes: 256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, base.Slots())
	for i := range in {
		in[i] = 0.001 * float64(i%7)
	}
	initial, err := base.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}

	entryBudget := make([]int64, 3)
	var counter *stepCancelCtx
	stages := make([]PipelineStage, 3)
	for i := range stages {
		step := i + 1
		idx := i
		stages[i] = PipelineStage{
			Name: []string{"rotate1", "rotate2", "rotate3"}[i],
			Run: func(ctx context.Context, state []*Ciphertext) ([]*Ciphertext, error) {
				if counter != nil {
					entryBudget[idx] = counter.budget.Load()
				}
				cc := base.WithContext(ctx)
				x, err := cc.Rotate(state[0], step)
				if err != nil {
					return nil, err
				}
				x, err = cc.MulRescale(x, x)
				if err != nil {
					return nil, err
				}
				return []*Ciphertext{x}, nil
			},
		}
	}

	// Reference run (also counts the context checks each stage performs).
	const startBudget = 1 << 40
	counter = newStepCancelCtx(startBudget)
	want, report, err := base.RunPipeline(counter, stages, []*Ciphertext{initial}, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.StagesRun != 3 {
		t.Fatalf("reference run executed %d stages", report.StagesRun)
	}
	wantBlob, err := base.MarshalCiphertext(want[0])
	if err != nil {
		t.Fatal(err)
	}
	checksBeforeStage1 := startBudget - entryBudget[1]
	counter = nil
	before := runtime.NumGoroutine()

	// Cancel a few checks into stage 1: stage 0's checkpoint is already
	// durable, stage 1 dies mid-flight.
	dir := t.TempDir()
	opts := PipelineOptions{CheckpointDir: dir}
	_, report, err = base.RunPipeline(newStepCancelCtx(checksBeforeStage1+3), stages, []*Ciphertext{initial}, opts)
	if err == nil {
		t.Fatal("mid-stage cancellation did not fail the run")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-stage cancel: got %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrEngineFault) {
		t.Fatalf("cancellation laundered into an engine fault: %v", err)
	}
	if report.StagesRun != 1 {
		t.Fatalf("canceled run completed %d stages, want 1", report.StagesRun)
	}

	// The dispatch goroutines must wind down, not leak.
	runtime.GC()
	for i := 0; i < 50 && runtime.NumGoroutine() > before+2; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d across canceled pipeline", before, after)
	}

	// Resume: skips the checkpointed stage and lands on the reference
	// result bit for bit.
	got, report, err := base.RunPipeline(context.Background(), stages, []*Ciphertext{initial}, opts)
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	if report.ResumedFrom != 0 {
		t.Fatalf("resumed from stage %d, want 0", report.ResumedFrom)
	}
	if report.StagesRun != 2 {
		t.Fatalf("resume executed %d stages, want 2", report.StagesRun)
	}
	gotBlob, err := base.MarshalCiphertext(got[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBlob, wantBlob) {
		t.Fatal("resumed pipeline result differs from uninterrupted run")
	}
}

// TestCancelMidBootstrap cancels a Refresh at several points along the
// pipeline and asserts the cut is clean: a typed ErrCanceled, no
// goroutine growth, and a context that still bootstraps correctly
// afterwards.
func TestCancelMidBootstrap(t *testing.T) {
	ctx := bootstrapCtx(t)
	in := []float64{0.3, -0.2}
	ct, err := ctx.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}
	exhausted := ctx.MustAdjust(ct, 0)

	// Warm the engine pool, prove the pipeline works at all, and count
	// how many context checks one full refresh performs.
	counter := newStepCancelCtx(1 << 40)
	if _, err := ctx.WithContext(counter).Refresh(exhausted); err != nil {
		t.Fatal(err)
	}
	total := (1 << 40) - counter.budget.Load()
	if total < 4 {
		t.Fatalf("refresh only checked the context %d times", total)
	}
	before := runtime.NumGoroutine()

	// Cancel after 1 check (barely started), mid-flight, and deep into
	// the pipeline. Every cut must surface as ErrCanceled.
	for _, checks := range []int64{1, total / 2, total - 1} {
		cancelable := ctx.WithContext(newStepCancelCtx(checks))
		if _, err := cancelable.Refresh(exhausted); !errors.Is(err, ErrCanceled) {
			t.Fatalf("checks=%d: got %v, want ErrCanceled", checks, err)
		}
	}

	// An already-canceled context must refuse before doing any work.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ctx.WithContext(pre).Refresh(exhausted); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: got %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-canceled refresh took %v, want immediate return", d)
	}

	// No goroutines may have leaked past the persistent engine pool.
	runtime.GC()
	for i := 0; i < 50 && runtime.NumGoroutine() > before+2; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d across canceled refreshes", before, after)
	}

	// The engine and context stay fully usable after the cancellations.
	refreshed, err := ctx.Refresh(exhausted)
	if err != nil {
		t.Fatalf("refresh after cancellations: %v", err)
	}
	out, err := ctx.DecryptReal(refreshed)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in {
		if math.Abs(out[i]-v) > 0.06 {
			t.Fatalf("slot %d after recovery: %v vs %v", i, out[i], v)
		}
	}
}
