package bitpacker

import "bitpacker/internal/ckks"

// Transform is an encoded plaintext linear map (matrix) ready to apply to
// ciphertexts at a fixed level.
type Transform struct {
	lt *ckks.LinearTransform
}

// Rotations returns the rotation amounts the transform's evaluation path
// needs (the baby/giant steps when the BSGS factorization is active, the
// diagonal indices otherwise); pass them in Config.Rotations when
// creating the context.
func (t *Transform) Rotations() []int { return t.lt.Rotations() }

// RotationsNaive returns the rotation amounts the per-diagonal reference
// path (ApplyNaive) needs — one per nonzero diagonal.
func (t *Transform) RotationsNaive() []int { return t.lt.RotationsNaive() }

// KeySwitchCounts reports how many keyswitches one application costs on
// the naive per-diagonal path versus the active (BSGS/hoisted) path.
func (t *Transform) KeySwitchCounts() (naive, active int) { return t.lt.KeySwitchCounts() }

// NewMatrixTransform encodes a dense dim×dim matrix (dim must divide
// Slots()) for application at the given level. Input vectors must be
// replicated across slot blocks (see Replicate).
func (c *Context) NewMatrixTransform(mat [][]complex128, level int) (*Transform, error) {
	lt, err := ckks.NewLinearTransform(c.params, c.encoder, mat, level)
	if err != nil {
		return nil, err
	}
	return &Transform{lt: lt}, nil
}

// NewDiagonalTransform encodes a sparse linear map given by its nonzero
// diagonals: diags[d][i] multiplies input slot (i+d) mod Slots().
func (c *Context) NewDiagonalTransform(diags map[int][]complex128, level int) (*Transform, error) {
	lt, err := ckks.NewLinearTransformFromDiags(c.params, c.encoder, diags, level)
	if err != nil {
		return nil, err
	}
	return &Transform{lt: lt}, nil
}

// Apply computes the matrix-vector product M·v homomorphically. The
// ciphertext must sit at the transform's level (ErrLevelMismatch
// otherwise); follow with Rescale. Dense transforms evaluate
// baby-step/giant-step with hoisted rotations (O(2√D) keyswitches for D
// diagonals); sparse ones run per-diagonal with the rotations hoisted.
// Under a canceled WithContext the fan-out stops within one dispatch
// quantum and Apply fails with ErrCanceled. With Config.Retry, a
// dropped engine task (ErrEngineFault) re-dispatches the whole
// transform from the untouched input.
func (c *Context) Apply(ct *Ciphertext, t *Transform) (*Ciphertext, error) {
	return c.runOp("Apply", func() (*ckks.Ciphertext, error) { return c.eval.ApplyLinearTransform(ct.ct, t.lt) })
}

// MustApply is Apply, panicking on error.
func (c *Context) MustApply(ct *Ciphertext, t *Transform) *Ciphertext {
	return must(c.Apply(ct, t))
}

// ApplyNaive computes the same product with one full keyswitch per
// nonzero diagonal — the reference path Apply is benchmarked and
// differentially tested against. Requires keys for RotationsNaive().
func (c *Context) ApplyNaive(ct *Ciphertext, t *Transform) (*Ciphertext, error) {
	return c.runOp("ApplyNaive", func() (*ckks.Ciphertext, error) { return c.eval.ApplyLinearTransformNaive(ct.ct, t.lt) })
}

// MustApplyNaive is ApplyNaive, panicking on error.
func (c *Context) MustApplyNaive(ct *Ciphertext, t *Transform) *Ciphertext {
	return must(c.ApplyNaive(ct, t))
}

// Replicate repeats the first dim values across all slots, the layout
// NewMatrixTransform expects.
func (c *Context) Replicate(values []complex128, dim int) []complex128 {
	return ckks.ReplicateBlocks(values, dim, c.Slots())
}

// Chebyshev evaluates sum_k coeffs[k]*T_k(x) on an encrypted x with slots
// in [-1, 1] by Paterson–Stockmeyer, consuming ChebyshevDepth(deg) =
// O(log deg) levels for a degree-deg series. Chebyshev bases are how CKKS
// programs evaluate activation functions and bootstrapping's sine.
func (c *Context) Chebyshev(ct *Ciphertext, coeffs []float64) (*Ciphertext, error) {
	out, err := c.eval.EvalChebyshev(c.encoder, ct.ct, coeffs)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct: out}, nil
}

// ChebyshevDepth returns the number of levels Chebyshev consumes for a
// degree-deg series (assuming all coefficients nonzero) — use it to size
// level budgets.
func ChebyshevDepth(deg int) int { return ckks.ChebyshevDepth(deg) }
