package ckks

import (
	"math/rand/v2"
	"testing"

	"bitpacker/internal/core"
	"bitpacker/internal/engine"
)

// Differential tests for the fused hot path: every fused kernel must be
// bit-identical to its staged (unfused) twin — same residue words, same
// level, same scale, same noise estimate — on both schemes, under both
// sequential and parallel dispatch. The evaluator consumes no randomness,
// so one setup can serve both runs: only the fusion toggle changes.

// ctEqualNoise is ctEqual plus the noise-estimate bookkeeping, which the
// fused paths compute without materializing the staged intermediates.
func ctEqualNoise(a, b *Ciphertext) bool {
	return ctEqual(a, b) && a.NoiseBits == b.NoiseBits
}

// spareEqual compares the RRNS spare channels word for word.
func spareEqual(a, b *Ciphertext) bool {
	if a.SpareDepth != b.SpareDepth || len(a.Spare0) != len(b.Spare0) || len(a.Spare1) != len(b.Spare1) {
		return false
	}
	for i := range a.Spare0 {
		if a.Spare0[i] != b.Spare0[i] {
			return false
		}
	}
	for i := range a.Spare1 {
		if a.Spare1[i] != b.Spare1[i] {
			return false
		}
	}
	return true
}

// withFused runs fn with the evaluator's fusion toggle forced, restoring
// the previous setting afterwards.
func withFused(s *testSetup, on bool, fn func() *Ciphertext) *Ciphertext {
	prev := s.ev.Fused()
	s.ev.SetFused(on)
	defer s.ev.SetFused(prev)
	return fn()
}

// TestFusedDifferentialOps: each rewritten evaluator op, fused vs
// unfused, workers 1 and 4, both schemes.
func TestFusedDifferentialOps(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		s := newTestSetup(t, scheme, 4, 40, 61, 9, 8, []int{1, 3})
		rng := rand.New(rand.NewPCG(201, 202))
		a := s.encryptValues(randomValues(s.params.Slots(), rng))
		b := s.encryptValues(randomValues(s.params.Slots(), rng))

		ops := []struct {
			name string
			run  func() *Ciphertext
		}{
			{"Add", func() *Ciphertext { return s.ev.MustAdd(a, b) }},
			{"Sub", func() *Ciphertext { return s.ev.MustSub(a, b) }},
			{"Neg", func() *Ciphertext { return s.ev.MustNeg(a) }},
			{"MulScalarInt", func() *Ciphertext { return s.ev.MustMulScalarInt(a, -7) }},
			{"MulRelin", func() *Ciphertext { return s.ev.MustMulRelin(a, b) }},
			{"Rescale", func() *Ciphertext { return s.ev.MustRescale(s.ev.MustMulRelin(a, b)) }},
			{"Adjust", func() *Ciphertext { return s.ev.MustAdjust(s.ev.MustMulRelin(a, b)) }},
			{"MulRescale", func() *Ciphertext { return s.ev.MustMulRescale(a, b) }},
			{"Rotate", func() *Ciphertext { return s.ev.MustRotate(a, 3) }},
			{"Conjugate", func() *Ciphertext { return s.ev.MustConjugate(a) }},
		}
		for _, workers := range []int{1, 4} {
			for _, op := range ops {
				fused := runWithWorkers(t, workers, func() *Ciphertext { return withFused(s, true, op.run) })
				staged := runWithWorkers(t, workers, func() *Ciphertext { return withFused(s, false, op.run) })
				if !ctEqualNoise(fused, staged) {
					t.Fatalf("%v workers=%d: fused %s differs from staged twin", scheme, workers, op.name)
				}
			}
		}
	}
}

// TestFusedMulRescaleMatchesTwoCall: the MulRescale macro op must be
// bit-identical to the two-call MulRelin+Rescale sequence, fused and
// staged alike — the whole point of the fold is that nothing about the
// arithmetic changes, only where the intermediates live.
func TestFusedMulRescaleMatchesTwoCall(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		s := newTestSetup(t, scheme, 3, 40, 61, 9, 8, nil)
		rng := rand.New(rand.NewPCG(203, 204))
		a := s.encryptValues(randomValues(s.params.Slots(), rng))
		b := s.encryptValues(randomValues(s.params.Slots(), rng))
		for _, workers := range []int{1, 4} {
			macro := runWithWorkers(t, workers, func() *Ciphertext {
				return withFused(s, true, func() *Ciphertext { return s.ev.MustMulRescale(a, b) })
			})
			twoCall := runWithWorkers(t, workers, func() *Ciphertext {
				return withFused(s, true, func() *Ciphertext { return s.ev.MustRescale(s.ev.MustMulRelin(a, b)) })
			})
			if !ctEqualNoise(macro, twoCall) {
				t.Fatalf("%v workers=%d: MulRescale differs from MulRelin+Rescale", scheme, workers)
			}
		}
	}
}

// TestFusedDifferentialRotateHoisted: the shared-decomposition rotation
// fan-out (one fork/join across all steps) vs the staged serial path,
// including a duplicate and a zero step.
func TestFusedDifferentialRotateHoisted(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		s := newTestSetup(t, scheme, 3, 40, 61, 9, 8, []int{1, 3})
		rng := rand.New(rand.NewPCG(205, 206))
		ct := s.encryptValues(randomValues(s.params.Slots(), rng))
		steps := []int{3, 1, 0, 3}
		for _, workers := range []int{1, 4} {
			engine.SetWorkers(workers)
			engine.SetMinParallelOps(1)
			s.ev.SetFused(true)
			fused := s.ev.MustRotateHoisted(ct, steps)
			s.ev.SetFused(false)
			staged := s.ev.MustRotateHoisted(ct, steps)
			s.ev.SetFused(true)
			engine.SetWorkers(0)
			engine.SetMinParallelOps(0)
			for i := range steps {
				if !ctEqualNoise(fused[i], staged[i]) {
					t.Fatalf("%v workers=%d: hoisted rotation by %d differs fused vs staged", scheme, workers, steps[i])
				}
			}
		}
	}
}

// TestFusedDifferentialLinearTransform: the BSGS path (dense matrix,
// baby-rotation fan-out + pair-kernel giant accumulation) and the
// per-diagonal hoisted path (sparse diagonals), fused vs staged.
func TestFusedDifferentialLinearTransform(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		const dim = 8
		rots := []int{1, 2, 3, 4, 5, 6, 7}
		s := newTestSetup(t, scheme, 2, 40, 61, 9, 8, rots)
		rng := rand.New(rand.NewPCG(207, 208))

		mat := make([][]complex128, dim)
		for i := range mat {
			mat[i] = make([]complex128, dim)
			for j := range mat[i] {
				mat[i][j] = complex(2*rng.Float64()-1, 0)
			}
		}
		dense, err := NewLinearTransform(s.params, s.enc, mat, s.params.MaxLevel())
		if err != nil {
			t.Fatal(err)
		}
		if dense.N1 == 0 {
			t.Fatalf("%v: dense transform did not take the BSGS path", scheme)
		}
		slots := s.params.Slots()
		sparseDiags := map[int][]complex128{
			0: constSlice(0.5, slots),
			1: constSlice(0.25, slots),
			3: constSlice(-0.25, slots),
		}
		sparse, err := NewLinearTransformFromDiags(s.params, s.enc, sparseDiags, s.params.MaxLevel())
		if err != nil {
			t.Fatal(err)
		}
		if sparse.N1 != 0 {
			t.Fatalf("%v: sparse transform unexpectedly took the BSGS path", scheme)
		}

		ct := s.encryptValues(ReplicateBlocks(randomValues(dim, rng), dim, slots))
		for _, lt := range []*LinearTransform{dense, sparse} {
			kind := "BSGS"
			if lt.N1 == 0 {
				kind = "hoisted"
			}
			for _, workers := range []int{1, 4} {
				fused := runWithWorkers(t, workers, func() *Ciphertext {
					return withFused(s, true, func() *Ciphertext { return s.ev.MustApplyLinearTransform(ct, lt) })
				})
				staged := runWithWorkers(t, workers, func() *Ciphertext {
					return withFused(s, false, func() *Ciphertext { return s.ev.MustApplyLinearTransform(ct, lt) })
				})
				if !ctEqualNoise(fused, staged) {
					t.Fatalf("%v workers=%d: %s linear transform differs fused vs staged", scheme, workers, kind)
				}
			}
		}
	}
}

// TestFusedDifferentialRRNS: over a redundant-residue chain, the fused
// paths must reproduce not just the live residues but the spare channel
// bookkeeping (words and depth) of the staged paths — additions
// accumulate tracked spare algebra, rescales cross-check and reseed.
func TestFusedDifferentialRRNS(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		s := newRRNSSetup(t, scheme, 3, 40, 61, 9, 8, nil)
		rng := rand.New(rand.NewPCG(209, 210))
		a := s.encryptValues(randomValues(s.params.Slots(), rng))
		b := s.encryptValues(randomValues(s.params.Slots(), rng))

		pipeline := func() *Ciphertext {
			sum := s.ev.MustAdd(a, b)
			sum = s.ev.MustMulScalarInt(sum, -3)
			sum = s.ev.MustSub(sum, a)
			return s.ev.MustRescale(s.ev.MustMulRelin(sum, sum))
		}
		for _, workers := range []int{1, 4} {
			fused := runWithWorkers(t, workers, func() *Ciphertext { return withFused(s, true, pipeline) })
			staged := runWithWorkers(t, workers, func() *Ciphertext { return withFused(s, false, pipeline) })
			if !ctEqualNoise(fused, staged) {
				t.Fatalf("%v workers=%d: RRNS pipeline live residues differ fused vs staged", scheme, workers)
			}
			if !spareEqual(fused, staged) {
				t.Fatalf("%v workers=%d: RRNS spare channel differs fused vs staged", scheme, workers)
			}
		}
	}
}

// TestFusedRepairHealsInFusedKernels: a bit-flipped residue word (the
// chaos injector's fault signature; the chaos package itself imports
// ckks, so the flip is applied directly here) must be repaired in place
// by the RRNS rung inside the fused kernels, and the healed output must
// be bit-identical to the fault-free fused run — at workers 1 and 4, for
// both the two-call sequence and the MulRescale macro op.
func TestFusedRepairHealsInFusedKernels(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		s := newRRNSSetup(t, scheme, 3, 40, 61, 9, 8, nil)
		rng := rand.New(rand.NewPCG(211, 212))
		a := s.encryptValues(randomValues(s.params.Slots(), rng))
		b := s.encryptValues(randomValues(s.params.Slots(), rng))

		ops := []struct {
			name string
			run  func(x, y *Ciphertext) *Ciphertext
		}{
			{"Rescale(MulRelin)", func(x, y *Ciphertext) *Ciphertext { return s.ev.MustRescale(s.ev.MustMulRelin(x, y)) }},
			{"MulRescale", func(x, y *Ciphertext) *Ciphertext { return s.ev.MustMulRescale(x, y) }},
		}
		frng := rand.New(rand.NewPCG(213, 214))
		for _, workers := range []int{1, 4} {
			for _, op := range ops {
				clean := runWithWorkers(t, workers, func() *Ciphertext {
					return op.run(a.CopyNew(), b.CopyNew())
				})
				for trial := 0; trial < 3; trial++ {
					ri := frng.IntN(a.C0.R())
					ci := frng.IntN(s.params.N())
					healed := runWithWorkers(t, workers, func() *Ciphertext {
						ca := a.CopyNew()
						ca.C0.Coeffs[ri][ci] ^= 1 << 63
						return op.run(ca, b.CopyNew())
					})
					if !ctEqual(clean, healed) {
						t.Fatalf("%v workers=%d %s trial %d: healed run not bit-identical to fault-free run",
							scheme, workers, op.name, trial)
					}
				}
			}
		}
	}
}
