package ckks

import (
	"math"
	"math/big"

	"bitpacker/internal/core"
	"bitpacker/internal/fherr"
	"bitpacker/internal/ring"
)

// Bootstrapper composes the bootstrapping building blocks into a full
// Refresh: ModRaise -> CoeffToSlot -> EvalMod (sine) -> SlotToCoeff.
//
// EvalMod evaluates the sine series by Paterson–Stockmeyer, so the level
// budget is ChebyshevDepth(SineDegree)+3 = O(log SineDegree)+3 rather
// than SineDegree+3, and CoeffToSlot/SlotToCoeff run baby-step/giant-step
// with hoisted rotations. Practical parameters still need a sparse secret
// (small ModRaise overflow K); the accelerator experiments use the
// paper's bootstrap trace model and published scales.
type Bootstrapper struct {
	params *Parameters
	enc    *Encoder
	dft    *HomDFT
	sine   []float64
	// topLevel is where ModRaise lands; the refreshed output comes out
	// ChebyshevDepth(SineDegree)+3 levels lower.
	topLevel int
}

// BootstrapConfig tunes the pipeline.
type BootstrapConfig struct {
	// KRange bounds the ModRaise overflow |I| (secret Hamming weight
	// dependent; (h+1)/2 is a hard bound). Default 2.
	KRange int
	// SineDegree is the Chebyshev degree of the sine approximation.
	// Default 19. Refresh consumes ChebyshevDepth(SineDegree)+3 levels.
	SineDegree int
}

// MulByI multiplies every slot by i^power exactly (no noise, no scale
// change) via monomial multiplication by X^{power*N/2}.
func (ev *Evaluator) MulByI(ct *Ciphertext, power int) *Ciphertext {
	n := ev.params.N()
	shift := ((power % 4) + 4) % 4 * (n / 2)
	if shift == 0 {
		return ct.CopyNew()
	}
	mul := func(p *ring.Poly) *ring.Poly {
		c := p.ScratchCopy()
		c.INTT()
		m := c.MulByMonomial(shift)
		ev.params.Ctx.PutPoly(c)
		m.NTT()
		return m
	}
	return newCiphertext(mul(ct.C0), mul(ct.C1), ct.Level, new(big.Rat).Set(ct.Scale), ct.NoiseBits)
}

// NewBootstrapper precomputes the DFT transforms and sine coefficients.
// The chain must provide at least ChebyshevDepth(cfg.SineDegree)+3
// levels; the secret key must be sparse enough that |I| < KRange holds
// with overwhelming probability ((h+1)/2 <= KRange guarantees it).
func NewBootstrapper(params *Parameters, enc *Encoder, cfg BootstrapConfig) (*Bootstrapper, error) {
	if cfg.KRange == 0 {
		cfg.KRange = 2
	}
	if cfg.SineDegree == 0 {
		cfg.SineDegree = 19
	}
	top := params.MaxLevel()
	need := ChebyshevDepth(cfg.SineDegree) + 3
	if top < need {
		return nil, fherr.Wrap(fherr.ErrInvalidParams,
			"ckks: bootstrapping needs %d levels, chain has %d", need, top)
	}

	q0f, _ := new(big.Float).SetInt(params.Chain.Levels[0].Q()).Float64()
	sTopF, _ := new(big.Float).SetRat(params.Chain.Levels[top].Scale).Float64()
	s0F, _ := new(big.Float).SetRat(params.Chain.Levels[0].Scale).Float64()

	// CoeffToSlot at the top level, folding in the factor
	// S_top / (2 * K * Q0): the post-CtS slots become the coefficient
	// pairs u' = (c + Q0*I) scaled into sine range, already halved for
	// the conjugate split. SlotToCoeff folds S_top/S0, correcting for the
	// (small) difference between the canonical scales at the two ends.
	ctsFactor := complex(sTopF/(2*float64(cfg.KRange)*q0f), 0)
	stcFactor := complex(sTopF/s0F, 0)
	stcLevel := top - 1 - ChebyshevDepth(cfg.SineDegree) - 1
	dft, err := NewHomDFT(params, enc, top, stcLevel+1, ctsFactor, stcFactor)
	if err != nil {
		return nil, err
	}
	// EvalMod amplitude: A*sin(2*pi*K*y) ~ c/S_top for |c| << Q0.
	amp := q0f / (2 * math.Pi * sTopF)
	return &Bootstrapper{
		params:   params,
		enc:      enc,
		dft:      dft,
		sine:     SineCoeffs(cfg.SineDegree, float64(cfg.KRange), amp),
		topLevel: top,
	}, nil
}

// Rotations returns the Galois rotations Refresh needs (generate them,
// plus conjugation, before building the evaluator's key set).
func (bs *Bootstrapper) Rotations() []int { return bs.dft.Rotations() }

// refreshedPrecisionBits is the demonstration-grade precision assumed
// for a bootstrapped ciphertext: the sine-approximation error dominates
// the carried-through noise estimate, so Refresh resets the output's
// NoiseBits to scale − refreshedPrecisionBits rather than propagating
// the (now meaningless) analytic chain.
const refreshedPrecisionBits = 10

// Refresh bootstraps a level-0 ciphertext back up the chain. The output
// lands ChebyshevDepth(SineDegree)+3 levels below the top with the
// original plaintext (to within the sine-approximation precision).
func (bs *Bootstrapper) Refresh(ev *Evaluator, ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level != 0 {
		return nil, fherr.Wrap(fherr.ErrLevelMismatch,
			"ckks: Refresh expects a level-0 ciphertext, got level %d", ct.Level)
	}

	// 1. ModRaise; re-tag with the canonical top scale (the CtS factor
	// was built against it).
	raised, err := ev.ModRaise(ct, bs.topLevel)
	if err != nil {
		return nil, err
	}
	raised.Scale = bs.params.DefaultScale(bs.topLevel)
	raised.seal()

	// 2. CoeffToSlot: slots become y = (c + Q0*I) / (2*K*Q0) pairs.
	yRaw, err := ev.ApplyLinearTransform(raised, bs.dft.CtS)
	if err != nil {
		return nil, err
	}
	y, err := ev.Rescale(yRaw)
	if err != nil {
		return nil, err
	}

	// 3. Conjugate split into the two real coefficient streams.
	yConj, err := ev.Conjugate(y)
	if err != nil {
		return nil, err
	}
	yr, err := ev.Add(y, yConj) // c_lo/(K*Q0) + overflow
	if err != nil {
		return nil, err
	}
	yDiff, err := ev.Sub(y, yConj)
	if err != nil {
		return nil, err
	}
	yi := ev.MulByI(yDiff, 3)                        // c_hi/(K*Q0) + overflow
	gr, err := ev.EvalChebyshev(bs.enc, yr, bs.sine) // ~ c_lo/S_top
	if err != nil {
		return nil, err
	}
	gi, err := ev.EvalChebyshev(bs.enc, yi, bs.sine) // ~ c_hi/S_top
	if err != nil {
		return nil, err
	}

	// 4. Recombine u = c_lo + i*c_hi and SlotToCoeff.
	u, err := ev.Add(gr, ev.MulByI(gi, 1))
	if err != nil {
		return nil, err
	}
	if u.Level != bs.dft.StC.Level {
		if u, err = ev.AdjustTo(u, bs.dft.StC.Level); err != nil {
			return nil, err
		}
	}
	outRaw, err := ev.ApplyLinearTransform(u, bs.dft.StC)
	if err != nil {
		return nil, err
	}
	out, err := ev.Rescale(outRaw)
	if err != nil {
		return nil, err
	}
	out.NoiseBits = core.RatLog2(out.Scale) - refreshedPrecisionBits
	out.seal()
	return out, nil
}
