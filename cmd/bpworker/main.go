// Command bpworker is the shard worker in both transports of the
// sharded execution layer.
//
// Forked mode (no flags): the supervisor (Context.RunSharded) spawns it
// with the job exchange directory and protocol parameters in the
// environment and speaks line-delimited JSON over stdin/stdout. Not
// meant to be run by hand.
//
// Fleet mode (-listen addr): serves a standing worker fleet over TCP.
// Supervisors started with -shard-addrs (bpserve, bpbench) dial out,
// authenticate with the job fingerprint, and stream the same protocol
// over the socket; the fleet member keeps computing through
// disconnections and partitions. Fleet members need a filesystem shared
// with the supervisor (the job exchange directory carries inputs,
// checkpoints, and outputs).
//
// See DESIGN.md "Sharded execution & supervision" and "Transports &
// fencing".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bitpacker/internal/shard/worker"
)

func main() {
	if worker.IsWorker() {
		os.Exit(worker.Main())
	}
	listen := flag.String("listen", "", "serve a worker fleet on this TCP address (e.g. :7070) instead of running as a forked worker")
	quiet := flag.Bool("quiet", false, "suppress fleet activity logging")
	flag.Parse()
	if *listen == "" {
		fmt.Fprintln(os.Stderr, "bpworker: must be spawned by the shard supervisor (BITPACKER_SHARD_DIR is not set) or given -listen")
		os.Exit(2)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	fl, err := worker.Listen(*listen, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpworker: %v\n", err)
		os.Exit(1)
	}
	logf("bpworker: fleet listening on %s", fl.Addr())
	if err := fl.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "bpworker: %v\n", err)
		os.Exit(1)
	}
}
