package ckks

import (
	"math"
	"math/big"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bitpacker/internal/core"
)

func TestModRaiseCongruence(t *testing.T) {
	for _, scheme := range []core.Scheme{core.BitPacker, core.RNSCKKS} {
		s := newTestSetup(t, scheme, 3, 40, 61, 9, 8, nil)
		rng := rand.New(rand.NewPCG(91, 92))
		vals := randomValues(s.params.Slots(), rng)
		ct := s.ev.MustAdjustTo(s.encryptValues(vals), 0)

		raised := s.ev.MustModRaise(ct, s.params.MaxLevel())
		if raised.Level != s.params.MaxLevel() {
			t.Fatalf("%v: level %d", scheme, raised.Level)
		}

		// Decryptions must agree coefficient-wise modulo Q0.
		low := s.dec.DecryptToPoly(ct)
		high := s.dec.DecryptToPoly(raised)
		lowBasis := s.dec.MustBasis(low.Value.Moduli)
		highBasis := s.dec.MustBasis(high.Value.Moduli)
		q0 := lowBasis.Q
		for k := 0; k < s.params.N(); k++ {
			a := low.Value.CoeffBig(lowBasis, k)
			b := high.Value.CoeffBig(highBasis, k)
			diff := new(big.Int).Sub(a, b)
			diff.Mod(diff, q0)
			if diff.Sign() != 0 {
				t.Fatalf("%v: coefficient %d not congruent mod Q0", scheme, k)
			}
			// And the Q0*I overflow must be small relative to Q_top.
			quo := new(big.Int).Quo(b, q0)
			if quo.BitLen() > 16 {
				t.Fatalf("%v: implausible overflow term (%d bits)", scheme, quo.BitLen())
			}
		}
	}
}

func TestHomDFTCoeffToSlot(t *testing.T) {
	// After CtS, the slots must hold the plaintext's coefficient pairs
	// c_lo + i*c_hi (divided by the scale).
	rots := make([]int, 0, 63)
	for r := 1; r < 64; r++ {
		rots = append(rots, r)
	}
	s := newTestSetup(t, core.BitPacker, 3, 40, 61, 7, 8, rots)
	dft, err := NewHomDFT(s.params, s.enc, s.params.MaxLevel(), s.params.MaxLevel()-1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(93, 94))
	vals := randomValues(s.params.Slots(), rng)
	ct := s.encryptValues(vals)

	out := s.ev.MustRescale(s.ev.MustApplyLinearTransform(ct, dft.CtS))
	got := s.dec.MustDecryptAndDecode(out, s.enc)

	// Reference: u = fftSpecialInv(z).
	want := append([]complex128(nil), vals...)
	s.enc.fftSpecialInv(want)
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > 1e-4 {
			t.Fatalf("slot %d: got %v want %v (err %g)", i, got[i], want[i], e)
		}
	}
}

func TestHomDFTRoundTrip(t *testing.T) {
	// StC(CtS(x)) must reproduce x (each transform consumes one level).
	rots := make([]int, 0, 63)
	for r := 1; r < 64; r++ {
		rots = append(rots, r)
	}
	s := newTestSetup(t, core.BitPacker, 3, 40, 61, 7, 8, rots)
	dft, err := NewHomDFT(s.params, s.enc, s.params.MaxLevel(), s.params.MaxLevel()-1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(95, 96))
	vals := randomValues(s.params.Slots(), rng)
	ct := s.encryptValues(vals)

	mid := s.ev.MustRescale(s.ev.MustApplyLinearTransform(ct, dft.CtS))
	back := s.ev.MustRescale(s.ev.MustApplyLinearTransform(mid, dft.StC))
	got := s.dec.MustDecryptAndDecode(back, s.enc)
	if e := maxErr(got, vals); e > 1e-3 {
		t.Fatalf("DFT roundtrip error %g", e)
	}
	if len(dft.Rotations()) == 0 {
		t.Fatal("DFT should need rotations")
	}
}

func TestSineCoeffsApproximation(t *testing.T) {
	// The Chebyshev interpolant of sin(2*pi*K*x) must be accurate on
	// [-1,1] at bootstrap-grade degrees.
	for _, tc := range []struct {
		degree int
		k      float64
		tol    float64
	}{
		{15, 1, 1e-5},
		{31, 2, 1e-9},
		{47, 4, 1e-9},
	} {
		coeffs := SineCoeffs(tc.degree, tc.k, 1.0)
		worst := 0.0
		for i := 0; i <= 400; i++ {
			x := -1 + float64(i)/200
			got := EvalChebyshevAt(coeffs, x)
			want := math.Sin(2 * math.Pi * tc.k * x)
			if e := math.Abs(got - want); e > worst {
				worst = e
			}
		}
		if worst > tc.tol {
			t.Fatalf("degree %d K=%.0f: max err %g > %g", tc.degree, tc.k, worst, tc.tol)
		}
	}
}

func TestEvalChebyshevMatchesReference(t *testing.T) {
	// Homomorphic Chebyshev evaluation of the bootstrap sine polynomial
	// must match the plain evaluation.
	s := newTestSetup(t, core.BitPacker, 8, 40, 61, 9, 8, nil)
	coeffs := SineCoeffs(7, 0.5, 1.0)
	rng := rand.New(rand.NewPCG(97, 98))
	n := s.params.Slots()
	vals := make([]complex128, n)
	for i := range vals {
		vals[i] = complex(2*rng.Float64()-1, 0)
	}
	ct := s.encryptValues(vals)
	out, err := s.ev.EvalChebyshev(s.enc, ct, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	got := s.dec.MustDecryptAndDecode(out, s.enc)
	for i := range vals {
		want := EvalChebyshevAt(coeffs, real(vals[i]))
		if e := math.Abs(real(got[i]) - want); e > 1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, real(got[i]), want)
		}
	}
}

func TestFullBootstrapRefresh(t *testing.T) {
	// End-to-end functional bootstrapping at demonstration parameters:
	// a level-0 ciphertext is refreshed back up the chain and still
	// decrypts to the original values. Uses a sparse secret (h=3) so the
	// ModRaise overflow stays within the K=2 sine range; parameters are
	// toy-scale and insecure by construction.
	const (
		deg = 19
		k   = 2
	)
	// The Paterson–Stockmeyer evaluator needs only ChebyshevDepth(deg)+3
	// levels (= 8 for deg 19) instead of the recurrence's deg+3 = 22; one
	// spare level on top keeps the refreshed output above level 0. A chain
	// this short is itself a regression guard: linear-depth evaluation
	// could not even construct a bootstrapper here.
	lvls := ChebyshevDepth(deg) + 4
	if lvls >= deg+3 {
		t.Fatalf("ChebyshevDepth(%d) = %d did not beat linear depth", deg, ChebyshevDepth(deg))
	}
	targets := make([]float64, lvls+1)
	for i := range targets {
		targets[i] = 40
	}
	prog := core.ProgramSpec{MaxLevel: lvls, TargetScaleBits: targets, QMinBits: 48}
	params, err := BuildParameters(core.BitPacker, prog, core.SecuritySpec{LogN: 8}, core.HWSpec{WordBits: 61}, 8, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	bs, err := NewBootstrapper(params, enc, BootstrapConfig{KRange: k, SineDegree: deg})
	if err != nil {
		t.Fatal(err)
	}

	kg := NewKeyGenerator(params, 101, 102)
	sk := kg.GenSecretKeySparse(3)
	pk := kg.GenPublicKey(sk)
	keys := &EvaluationKeySet{
		Relin:  kg.GenRelinKey(sk),
		Galois: kg.GenRotationKeys(sk, bs.Rotations(), true),
	}
	ev := NewEvaluator(params, keys)
	encr := NewEncryptor(params, pk, 103, 104)
	dec := NewDecryptor(params, sk)

	rng := rand.New(rand.NewPCG(105, 106))
	n := params.Slots()
	vals := make([]complex128, n)
	for i := range vals {
		vals[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	lvl := params.MaxLevel()
	pt := &Plaintext{
		Value: enc.MustEncode(vals, params.DefaultScale(lvl), params.LevelModuli(lvl)),
		Level: lvl,
		Scale: params.DefaultScale(lvl),
	}
	exhausted := ev.MustAdjustTo(encr.MustEncryptAtLevel(pt, lvl), 0)

	refreshed, err := bs.Refresh(ev, exhausted)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.Level < 1 {
		t.Fatalf("refresh did not regain levels: %d", refreshed.Level)
	}
	got := dec.MustDecryptAndDecode(refreshed, enc)
	// Demonstration-grade precision: ~4-5 error-free bits (the deg-19
	// sine, the 128-term DFT noise, and the A~40 amplitude swamp the
	// usual noise floor at these toy parameters).
	if e := maxErr(got, vals); e > 0.06 {
		t.Fatalf("bootstrap error %g (level regained: %d)", e, refreshed.Level)
	}
	t.Logf("bootstrap: refreshed to level %d with max error %g", refreshed.Level, maxErr(got, vals))
}

func TestMulByI(t *testing.T) {
	s := newTestSetup(t, core.BitPacker, 2, 40, 61, 9, 8, nil)
	rng := rand.New(rand.NewPCG(107, 108))
	vals := randomValues(s.params.Slots(), rng)
	ct := s.encryptValues(vals)
	for power := 0; power < 4; power++ {
		out := s.ev.MulByI(ct, power)
		got := s.dec.MustDecryptAndDecode(out, s.enc)
		factor := complex(1, 0)
		for p := 0; p < power; p++ {
			factor *= complex(0, 1)
		}
		want := make([]complex128, len(vals))
		for i := range vals {
			want[i] = vals[i] * factor
		}
		if e := maxErr(got, want); e > 1e-6 {
			t.Fatalf("i^%d: error %g", power, e)
		}
	}
}
