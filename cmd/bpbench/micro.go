package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"bitpacker"
)

// BenchRecord is one machine-readable microbenchmark result, written by
// the -json flag so external tooling (plotting, regression tracking) can
// consume host-kernel timings without scraping `go test -bench` output.
type BenchRecord struct {
	Op       string  `json:"op"`
	Scheme   string  `json:"scheme"`
	WordBits int     `json:"word_bits"`
	LogN     int     `json:"log_n"`
	Residues int     `json:"residues"`
	Workers  int     `json:"workers"`
	NsPerOp  float64 `json:"ns_per_op"`
	Iters    int     `json:"iters"`
}

// timeOp runs fn repeatedly until it has accumulated enough wall time for
// a stable estimate and returns ns/op with the iteration count used.
func timeOp(fn func()) (float64, int) {
	const (
		minDuration = 200 * time.Millisecond
		maxIters    = 1 << 16
	)
	fn() // warm up pools, NTT tables, conversion caches
	var (
		iters   int
		elapsed time.Duration
	)
	for elapsed < minDuration && iters < maxIters {
		n := 1
		if elapsed > 0 {
			// Estimate how many more iterations reach minDuration.
			per := elapsed / time.Duration(iters)
			n = int((minDuration - elapsed) / per)
			if n < 1 {
				n = 1
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed += time.Since(start)
		iters += n
	}
	return float64(elapsed.Nanoseconds()) / float64(iters), iters
}

// runMicrobench times the host-library hot ops (ciphertext multiply +
// rescale, level adjust) for both representations at the accelerator- and
// CPU-favored word sizes, and writes the records as JSON to path.
func runMicrobench(path string) error {
	const (
		logN      = 12
		levels    = 6
		scaleBits = 45
	)
	var records []BenchRecord
	for _, w := range []int{28, 61} {
		for _, scheme := range []bitpacker.Scheme{bitpacker.RNSCKKS, bitpacker.BitPacker} {
			ctx, err := bitpacker.New(bitpacker.Config{
				Scheme:    scheme,
				LogN:      logN,
				Levels:    levels,
				ScaleBits: scaleBits,
				WordBits:  w,
			})
			if err != nil {
				return fmt.Errorf("bench setup (%v, w=%d): %w", scheme, w, err)
			}
			ct, err := ctx.EncryptReal([]float64{0.5, 0.25})
			if err != nil {
				return fmt.Errorf("bench encrypt (%v, w=%d): %w", scheme, w, err)
			}
			base := BenchRecord{
				Scheme:   scheme.String(),
				WordBits: w,
				LogN:     logN,
				Residues: ct.Residues(),
				Workers:  bitpacker.Workers(),
			}

			rec := base
			rec.Op = "MulRescale"
			rec.NsPerOp, rec.Iters = timeOp(func() { _ = ctx.Rescale(ctx.Mul(ct, ct)) })
			records = append(records, rec)
			fmt.Printf("  %-12s %-10s w=%-3d %12.0f ns/op (%d iters, %d workers)\n",
				rec.Op, rec.Scheme, rec.WordBits, rec.NsPerOp, rec.Iters, rec.Workers)

			rec = base
			rec.Op = "Adjust"
			rec.NsPerOp, rec.Iters = timeOp(func() { _ = ctx.Adjust(ct, ct.Level()-1) })
			records = append(records, rec)
			fmt.Printf("  %-12s %-10s w=%-3d %12.0f ns/op (%d iters, %d workers)\n",
				rec.Op, rec.Scheme, rec.WordBits, rec.NsPerOp, rec.Iters, rec.Workers)
		}
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
	return nil
}
