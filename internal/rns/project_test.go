package rns

import (
	"math/big"
	"math/rand/v2"
	"testing"
)

// projectRef is the big.Int ground truth: compose X from its residues,
// reduce mod dst.
func projectRef(b *Basis, xs []uint64, dst uint64) uint64 {
	x := b.Compose(xs)
	return new(big.Int).Mod(x, new(big.Int).SetUint64(dst)).Uint64()
}

func TestProjectCoeffExact(t *testing.T) {
	for _, tc := range []struct {
		name     string
		srcBits  uint
		srcCount int
		dstBits  uint
	}{
		{"wide-to-wide", 45, 5, 45},
		{"many-small", 28, 8, 30},
		{"to-large-spare", 40, 4, 61},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := primes(t, tc.srcBits, 128, tc.srcCount)
			dst := primes(t, tc.dstBits, 128, tc.srcCount+1)[tc.srcCount]
			p, err := NewProjector(64, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := NewBasis(64, src)
			rng := rand.New(rand.NewPCG(7, 7))
			for i := 0; i < 500; i++ {
				x := randBig(rng, b.Q)
				xs := b.Decompose(x)
				got := p.ProjectCoeff(xs)
				want := projectRef(b, xs, dst)
				if got != want {
					t.Fatalf("X=%v: got %d want %d", x, got, want)
				}
			}
		})
	}
}

// TestProjectCoeffBoundaries drives the float64 overflow-count estimate
// through its danger zone: values whose fractional part Σ y_i/p_i sits at
// or next to an integer boundary must hit the exact big.Int fallback and
// still project correctly.
func TestProjectCoeffBoundaries(t *testing.T) {
	src := primes(t, 45, 128, 6)
	dst := primes(t, 61, 128, 1)[0]
	p, err := NewProjector(64, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewBasis(64, src)
	edge := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(b.Q, big.NewInt(1)),
		new(big.Int).Rsh(b.Q, 1),
		new(big.Int).Add(new(big.Int).Rsh(b.Q, 1), big.NewInt(1)),
	}
	// X = multiples of each q_i land y_i on zero, pinning the fractional
	// sum near integers.
	for _, q := range src {
		for _, k := range []uint64{1, 2, 1 << 20} {
			v := new(big.Int).Mul(new(big.Int).SetUint64(q), new(big.Int).SetUint64(k))
			edge = append(edge, v.Mod(v, b.Q))
		}
	}
	for _, x := range edge {
		xs := b.Decompose(x)
		got := p.ProjectCoeff(xs)
		want := projectRef(b, xs, dst)
		if got != want {
			t.Fatalf("X=%v: got %d want %d", x, got, want)
		}
	}
}

func TestProjectVector(t *testing.T) {
	src := primes(t, 40, 128, 4)
	dst := primes(t, 61, 128, 1)[0]
	p, err := NewProjector(64, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewBasis(64, src)
	const n = 64
	rows := make([][]uint64, len(src))
	for i := range rows {
		rows[i] = make([]uint64, n)
	}
	want := make([]uint64, n)
	rng := rand.New(rand.NewPCG(9, 9))
	for k := 0; k < n; k++ {
		x := randBig(rng, b.Q)
		xs := b.Decompose(x)
		for i := range rows {
			rows[i][k] = xs[i]
		}
		want[k] = projectRef(b, xs, dst)
	}
	got := make([]uint64, n)
	p.Project(got, rows)
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("coeff %d: got %d want %d", k, got[k], want[k])
		}
	}
}

func TestNewProjectorErrors(t *testing.T) {
	if _, err := NewProjector(64, nil, 97); err == nil {
		t.Fatal("empty source basis accepted")
	}
	if _, err := NewProjector(64, []uint64{15}, 97); err == nil {
		t.Fatal("composite source modulus accepted")
	}
}
