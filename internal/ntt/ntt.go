// Package ntt implements the negacyclic number-theoretic transform over
// Z_q[X]/(X^N+1) for NTT-friendly primes q ≡ 1 (mod 2N).
//
// The implementation follows Longa & Naehrig's merged-twiddle formulation:
// the forward transform is a decimation-in-time Cooley-Tukey butterfly
// network over powers of ψ (a primitive 2N-th root of unity) stored in
// bit-reversed order, and the inverse is the matching Gentleman-Sande
// network. Twiddle multiplications use Shoup's precomputed-quotient trick.
//
// Both transforms use lazy reduction (Longa–Naehrig / Harvey): butterfly
// operands travel in [0, 4q) forward and [0, 2q) inverse, with a single
// correction pass at the end. This is exactly what nt.MaxModulusBits = 62
// reserves its two slack bits for: 4q < 2^64 keeps every lazy sum inside
// one machine word.
package ntt

import (
	"fmt"
	"math/bits"
	"sync"

	"bitpacker/internal/nt"
)

// Table holds the precomputed twiddle factors for one (q, N) pair.
// Tables are immutable after creation and safe for concurrent use.
type Table struct {
	Q uint64 // modulus, prime, q ≡ 1 mod 2N
	N int    // transform size, power of two

	psi      []uint64 // ψ^bitrev(i), i in [0, N)
	psiShoup []uint64
	inv      []uint64 // ψ^{-bitrev(i)}
	invShoup []uint64
	nInv     uint64 // N^{-1} mod q
	nInvSh   uint64
	// invN1 = inv[1]·N^{-1} mod q: the last inverse stage's single twiddle
	// with the final N^{-1} scaling folded in, so the correction pass
	// disappears into the last butterfly (N >= 2 only).
	invN1   uint64
	invN1Sh uint64

	// Barrett constant floor(2^128/q) for division-free pointwise products.
	brHi, brLo uint64
}

// NewTable precomputes an NTT table for modulus q and size n (a power of
// two). It returns an error if q is not an NTT-friendly prime for n.
func NewTable(q uint64, n int) (*Table, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two", n)
	}
	if bits.Len64(q) > nt.MaxModulusBits {
		return nil, fmt.Errorf("ntt: modulus %d exceeds %d bits", q, nt.MaxModulusBits)
	}
	if !nt.IsNTTFriendly(q, uint64(2*n)) {
		return nil, fmt.Errorf("ntt: %d is not an NTT-friendly prime for N=%d", q, n)
	}
	psi := nt.PrimitiveNthRoot(uint64(2*n), q)
	psiInv := nt.InvMod(psi, q)

	t := &Table{
		Q:        q,
		N:        n,
		psi:      make([]uint64, n),
		psiShoup: make([]uint64, n),
		inv:      make([]uint64, n),
		invShoup: make([]uint64, n),
	}
	logN := bits.Len(uint(n)) - 1
	fwd, bwd := uint64(1), uint64(1)
	powF := make([]uint64, n)
	powB := make([]uint64, n)
	for i := 0; i < n; i++ {
		powF[i] = fwd
		powB[i] = bwd
		fwd = nt.MulMod(fwd, psi, q)
		bwd = nt.MulMod(bwd, psiInv, q)
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> (64 - logN))
		t.psi[i] = powF[j]
		t.psiShoup[i] = nt.ShoupPrecomp(powF[j], q)
		t.inv[i] = powB[j]
		t.invShoup[i] = nt.ShoupPrecomp(powB[j], q)
	}
	t.nInv = nt.InvMod(uint64(n), q)
	t.nInvSh = nt.ShoupPrecomp(t.nInv, q)
	if n >= 2 {
		t.invN1 = nt.MulMod(t.inv[1], t.nInv, q)
		t.invN1Sh = nt.ShoupPrecomp(t.invN1, q)
	}
	t.brHi, t.brLo = nt.BarrettConstant(q)
	return t, nil
}

// Forward transforms a (coefficient-domain, values < q) in place into the
// NTT evaluation domain. len(a) must equal t.N. Outputs are fully reduced
// (< q).
//
// The butterfly network is lazy: values stay in [0, 4q) between stages.
// Each butterfly reduces its sum operand into [0, 2q), takes the twiddle
// product in [0, 2q) via the subtraction-free Shoup multiply, and emits
// u+v and u-v+2q, both < 4q. Since q < 2^62 (nt.MaxModulusBits), 4q never
// overflows uint64. The [0, 4q) → [0, q) correction is folded into the
// last butterfly stage (which already writes every word once), so the
// transform makes no separate correction pass over the vector.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	q := t.Q
	q2 := q << 1
	n := t.N
	step := n
	for m := 1; m < n>>1; m <<= 1 {
		step >>= 1
		for i := 0; i < m; i++ {
			w := t.psi[m+i]
			ws := t.psiShoup[m+i]
			j1 := 2 * i * step
			lo := a[j1 : j1+step : j1+step]
			hi := a[j1+step : j1+2*step : j1+2*step]
			for j := range lo {
				u := lo[j]
				if u >= q2 {
					u -= q2
				}
				v := nt.MulModLazyShoup(hi[j], w, ws, q)
				lo[j] = u + v
				hi[j] = u + q2 - v
			}
		}
	}
	// Last stage (step == 1), with the final correction fused in: the
	// emitted u+v and u+2q-v are reduced from [0, 4q) to [0, q) in
	// registers, exactly as the separate pass would.
	for i, m := 0, n>>1; i < m; i++ {
		w := t.psi[m+i]
		ws := t.psiShoup[m+i]
		u := a[2*i]
		if u >= q2 {
			u -= q2
		}
		v := nt.MulModLazyShoup(a[2*i+1], w, ws, q)
		x := u + v
		if x >= q2 {
			x -= q2
		}
		if x >= q {
			x -= q
		}
		y := u + q2 - v
		if y >= q2 {
			y -= q2
		}
		if y >= q {
			y -= q
		}
		a[2*i] = x
		a[2*i+1] = y
	}
}

// Inverse transforms a (NTT domain, values < q) in place back into
// coefficients, fully reduced (< q).
//
// The Gentleman-Sande network keeps values in [0, 2q): the sum branch is
// reduced with one conditional subtraction, the difference branch feeds
// u-v+2q (< 4q, safe for q < 2^62) into the lazy Shoup multiply which
// lands back in [0, 2q). The final N^{-1} scaling is folded into the last
// stage: its single twiddle becomes inv[1]·N^{-1} (precomputed), and the
// sum branch takes the exact Shoup multiply by N^{-1} directly — both
// branches emit the same fully reduced words the separate scaling pass
// produced, without re-reading the vector. (The exact Shoup multiply
// fully reduces any operand < 4q, since its lazy product lies in [0, 2q)
// for q < 2^62; the lazy transforms rely on the same bound.)
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	q := t.Q
	q2 := q << 1
	n := t.N
	if n == 1 {
		a[0] = nt.MulModShoup(a[0], t.nInv, t.nInvSh, q)
		return
	}
	step := 1
	for m := n >> 1; m >= 2; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.inv[m+i]
			ws := t.invShoup[m+i]
			j1 := 2 * i * step
			lo := a[j1 : j1+step : j1+step]
			hi := a[j1+step : j1+2*step : j1+2*step]
			for j := range lo {
				u := lo[j]
				v := hi[j]
				s := u + v
				if s >= q2 {
					s -= q2
				}
				lo[j] = s
				hi[j] = nt.MulModLazyShoup(u+q2-v, w, ws, q)
			}
		}
		step <<= 1
	}
	// Last stage (m == 1) with the N^{-1} scaling fused in.
	half := n >> 1
	w, ws := t.invN1, t.invN1Sh
	nInv, nInvSh := t.nInv, t.nInvSh
	lo := a[:half:half]
	hi := a[half:n:n]
	for j := range lo {
		u := lo[j]
		v := hi[j]
		s := u + v
		if s >= q2 {
			s -= q2
		}
		lo[j] = nt.MulModShoup(s, nInv, nInvSh, q)
		hi[j] = nt.MulModShoup(u+q2-v, w, ws, q)
	}
}

// MulCoeffs stores the pointwise product of a and b (both NTT domain) in
// out. All slices must have length t.N; aliasing is allowed. The product
// uses the precomputed Barrett constant, avoiding the hardware divide
// nt.MulMod pays per coefficient.
func (t *Table) MulCoeffs(out, a, b []uint64) {
	q, bhi, blo := t.Q, t.brHi, t.brLo
	a = a[:len(out)]
	b = b[:len(out)]
	for i := range out {
		out[i] = nt.MulModBarrett(a[i], b[i], q, bhi, blo)
	}
}

// MulCoeffsAdd accumulates the pointwise product of a and b (both NTT
// domain) into out: out[i] = out[i] + a[i]*b[i] mod q.
func (t *Table) MulCoeffsAdd(out, a, b []uint64) {
	q, bhi, blo := t.Q, t.brHi, t.brLo
	a = a[:len(out)]
	b = b[:len(out)]
	for i := range out {
		out[i] = nt.AddMod(out[i], nt.MulModBarrett(a[i], b[i], q, bhi, blo), q)
	}
}

// MulCoeffsCross stores the cross product out[i] = a0[i]*b1[i] +
// a1[i]*b0[i] mod q (all NTT domain) — the middle term of a degree-1
// ciphertext product, computed in one pass instead of a MulCoeffs
// followed by a MulCoeffsAdd.
func (t *Table) MulCoeffsCross(out, a0, b1, a1, b0 []uint64) {
	q, bhi, blo := t.Q, t.brHi, t.brLo
	a0 = a0[:len(out)]
	b1 = b1[:len(out)]
	a1 = a1[:len(out)]
	b0 = b0[:len(out)]
	for i := range out {
		x := nt.MulModBarrett(a0[i], b1[i], q, bhi, blo)
		y := nt.MulModBarrett(a1[i], b0[i], q, bhi, blo)
		out[i] = nt.AddMod(x, y, q)
	}
}

// scratch pools the transform-sized temporaries PolyMul needs, so
// repeated schoolbook-replacement multiplies allocate nothing in steady
// state. Slices are keyed by capacity check, not length, so one pool
// serves every table size in the process.
var scratch sync.Pool

func getScratch(n int) []uint64 {
	if p, _ := scratch.Get().(*[]uint64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint64, n)
}

func putScratch(v []uint64) {
	scratch.Put(&v)
}

// PolyMul multiplies two coefficient-domain polynomials negacyclically
// (mod X^N+1, mod q), writing coefficients into out. It is a convenience
// for tests; hot paths keep operands in the NTT domain.
func (t *Table) PolyMul(out, a, b []uint64) {
	ta := getScratch(t.N)
	tb := getScratch(t.N)
	copy(ta, a)
	copy(tb, b)
	t.Forward(ta)
	t.Forward(tb)
	t.MulCoeffs(ta, ta, tb)
	t.Inverse(ta)
	copy(out, ta)
	putScratch(ta)
	putScratch(tb)
}
