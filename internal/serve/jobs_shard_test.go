package serve

// Long jobs through the sharded executor: the serving layer's job
// manager routes steps into supervised worker processes, and a worker
// crash mid-job must be recovered transparently (respawn + checkpointed
// re-dispatch) with the job still producing the right values. Worker
// processes are this test binary re-exec'd via TestMain.

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"bitpacker"
	"bitpacker/internal/chaos"
	"bitpacker/internal/shard/worker"
)

func TestMain(m *testing.M) {
	if worker.IsWorker() {
		os.Exit(worker.Main())
	}
	os.Exit(m.Run())
}

func TestJobShardedSurvivesWorkerCrash(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	fault := chaos.ProcFault{Kind: chaos.ProcCrash, Shard: -1, Step: 1, Times: 1}
	srv, err := NewServer(Options{
		Profiles: []ProfileConfig{{
			Name: "p",
			Params: bitpacker.Config{
				Scheme:        bitpacker.BitPacker,
				LogN:          9,
				Levels:        3,
				ScaleBits:     40,
				QMinBits:      48,
				WordBits:      61,
				Seed:          13,
				KeyCacheBytes: 8 << 20,
			},
			Window: 32,
		}},
		JobDir: t.TempDir(),
		Shard: JobShardOptions{
			Workers:       2,
			WorkerCommand: []string{exe},
			WorkerEnv:     []string{chaos.ProcFaultEnv + "=" + fault.Encode()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	register(t, ts.URL, "alice")
	p, err := srv.reg.profile("p")
	if err != nil {
		t.Fatal(err)
	}

	in := make([]float64, p.ctx.Slots())
	for i := range in {
		in[i] = 0.01 * float64(i%5)
	}
	ct, err := p.ctx.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.ctx.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	spec, _ := json.Marshal(JobSpec{Tenant: "alice", Profile: "p",
		Steps: []JobStep{{Op: OpScale, Arg: 2}, {Op: OpOffset, Arg: 0.5}}})
	WriteFrame(&body, FrameHeader, spec)
	WriteFrame(&body, FrameBlob, blob)
	res, err := http.Post(ts.URL+"/v1/job", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]string
	json.NewDecoder(res.Body).Decode(&sub)
	res.Body.Close()
	if res.StatusCode != 200 || sub["id"] == "" {
		t.Fatalf("job submit: status %d, body %v", res.StatusCode, sub)
	}

	rec := pollJob(t, ts.URL, sub["id"], 30*time.Second)
	if rec.State != JobDone {
		t.Fatalf("sharded job ended %s: %s", rec.State, rec.Error)
	}
	if rec.Shards != 1 {
		t.Fatalf("one-ciphertext job ran %d shards", rec.Shards)
	}
	if rec.Respawns == 0 || rec.Redispatches == 0 {
		t.Fatalf("injected worker crash was not recovered through respawn/re-dispatch: %+v", rec)
	}

	res, err = http.Get(ts.URL + "/v1/job/" + sub["id"] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	outBlob, err := expectFrame(res.Body, FrameBlob, DefaultMaxBlobBytes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ctx.UnmarshalCiphertext(outBlob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ctx.DecryptReal(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		want := 2*in[i] + 0.5
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}
