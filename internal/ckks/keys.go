package ckks

import (
	"math/big"

	"bitpacker/internal/ring"
)

// SecretKey holds the ternary secret s over the full key basis
// (every chain modulus plus the specials), in the NTT domain.
type SecretKey struct {
	S *ring.Poly
}

// PublicKey is an encryption of zero: (b, a) = (-a*s + e, a) over the full
// key basis, NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts the product with some s' (s^2 for
// relinearization, phi_k(s) for rotations) under s. One (B, A) pair per
// keyswitching digit, over the full key basis, NTT domain.
type SwitchingKey struct {
	B, A []*ring.Poly
}

// EvaluationKeySet is everything the evaluator may need.
type EvaluationKeySet struct {
	Relin  *SwitchingKey
	Galois map[uint64]*SwitchingKey // by Galois element
}

// KeyGenerator derives all key material deterministically from a seed.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator creates a generator with the given seed.
func NewKeyGenerator(params *Parameters, seed1, seed2 uint64) *KeyGenerator {
	return &KeyGenerator{
		params:  params,
		sampler: ring.NewSampler(params.Ctx, seed1, seed2),
	}
}

// GenSecretKey samples a uniform-ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	s := kg.sampler.TernaryPoly(kg.params.KeyBasis())
	s.NTT()
	return &SecretKey{S: s}
}

// GenPublicKey samples a fresh public key for sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	basis := kg.params.KeyBasis()
	a := kg.sampler.UniformPoly(basis)
	e := kg.sampler.GaussianPoly(basis, kg.params.Sigma)
	e.NTT()
	b := ring.NewPoly(kg.params.Ctx, basis)
	b.IsNTT = true
	b.MulCoeffs(a, sk.S)
	b.Neg(b)
	b.Add(b, e)
	return &PublicKey{B: b, A: a}
}

// gadget returns g_j for digit j: P * Uhat_j * [Uhat_j^{-1}]_{U_j}, where
// U_j is the product of the union moduli assigned to digit j and
// Uhat_j = U/U_j. g_j is congruent to P modulo every digit-j modulus and
// to 0 modulo every other union modulus — at every level, which is what
// lets one switching key serve the whole chain even though BitPacker
// levels use different terminal moduli.
func (kg *KeyGenerator) gadget(digit int) *big.Int {
	p := kg.params
	bigU := big.NewInt(1)
	uj := big.NewInt(1)
	for _, q := range p.union {
		bq := new(big.Int).SetUint64(q)
		bigU.Mul(bigU, bq)
		if p.digitOf[q] == digit {
			uj.Mul(uj, bq)
		}
	}
	uhat := new(big.Int).Div(bigU, uj)
	uhatInv := new(big.Int).ModInverse(new(big.Int).Mod(uhat, uj), uj)
	bigP := big.NewInt(1)
	for _, q := range p.Chain.Special {
		bigP.Mul(bigP, new(big.Int).SetUint64(q))
	}
	g := new(big.Int).Mul(uhat, uhatInv)
	return g.Mul(g, bigP)
}

// GenSwitchingKey builds the key switching sPrime -> sk (both NTT domain
// over the full key basis).
func (kg *KeyGenerator) GenSwitchingKey(sk *SecretKey, sPrime *ring.Poly) *SwitchingKey {
	p := kg.params
	basis := p.KeyBasis()
	swk := &SwitchingKey{
		B: make([]*ring.Poly, p.Dnum),
		A: make([]*ring.Poly, p.Dnum),
	}
	for j := 0; j < p.Dnum; j++ {
		a := kg.sampler.UniformPoly(basis)
		e := kg.sampler.GaussianPoly(basis, p.Sigma)
		e.NTT()
		// b = -a*s + e + g_j * s'
		b := ring.NewPoly(p.Ctx, basis)
		b.IsNTT = true
		b.MulCoeffs(a, sk.S)
		b.Neg(b)
		b.Add(b, e)
		gs := ring.NewPoly(p.Ctx, basis)
		gs.IsNTT = true
		gs.MulScalarBig(sPrime, kg.gadget(j))
		b.Add(b, gs)
		swk.B[j] = b
		swk.A[j] = a
	}
	return swk
}

// GenRelinKey builds the s^2 -> s switching key.
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *SwitchingKey {
	s2 := ring.NewPoly(kg.params.Ctx, kg.params.KeyBasis())
	s2.IsNTT = true
	s2.MulCoeffs(sk.S, sk.S)
	return kg.GenSwitchingKey(sk, s2)
}

// GenGaloisKey builds the phi_k(s) -> s switching key for Galois element k.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, galEl uint64) *SwitchingKey {
	s := sk.S.Copy()
	s.INTT()
	sk2 := s.Automorphism(galEl)
	sk2.NTT()
	return kg.GenSwitchingKey(sk, sk2)
}

// GenRotationKeys builds Galois keys for the given slot rotations and,
// optionally, conjugation.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, conjugate bool) map[uint64]*SwitchingKey {
	out := map[uint64]*SwitchingKey{}
	n := kg.params.N()
	for _, r := range rotations {
		el := ring.GaloisElementForRotation(r, n)
		if _, ok := out[el]; !ok {
			out[el] = kg.GenGaloisKey(sk, el)
		}
	}
	if conjugate {
		el := ring.GaloisElementForConjugation(n)
		out[el] = kg.GenGaloisKey(sk, el)
	}
	return out
}

// GenSecretKeySparse samples a secret with Hamming weight h (sparse
// ternary), the distribution bootstrapping uses so the ModRaise overflow
// I(X) stays within the sine approximation's range.
func (kg *KeyGenerator) GenSecretKeySparse(h int) *SecretKey {
	s := kg.sampler.SparseTernaryPoly(kg.params.KeyBasis(), h)
	s.NTT()
	return &SecretKey{S: s}
}
