package bitpacker

import (
	"fmt"
	"io"
	"strings"

	"bitpacker/internal/accel"
	"bitpacker/internal/core"
	"bitpacker/internal/experiments"
	"bitpacker/internal/workloads"
)

// SimStats summarizes one accelerator simulation.
type SimStats struct {
	// Milliseconds of simulated execution on the CraterLake-class model.
	Milliseconds float64
	// EnergyMJ consumed, and the fraction spent in rescale/adjust.
	EnergyMJ         float64
	LevelMgmtPercent float64
	// HBMGigabytes of off-chip traffic.
	HBMGigabytes float64
	// AreaMM2 of the accelerator configuration used.
	AreaMM2 float64
	// EDP is the energy-delay product in J*s.
	EDP float64
	// MeanResidues is the chain's average residue count per level.
	MeanResidues float64
}

// Workloads lists the benchmark names available to SimulateWorkload.
func Workloads() []string {
	var out []string
	for _, b := range workloads.Benchmarks() {
		out = append(out, b.Name)
	}
	return out
}

// BootstrapAlgorithms lists the bootstrapping variants ("BS19", "BS26").
func BootstrapAlgorithms() []string {
	var out []string
	for _, bs := range workloads.Bootstraps() {
		out = append(out, bs.Name)
	}
	return out
}

// SimulateWorkload runs one of the paper's benchmarks on the accelerator
// model with the given representation and hardware word size.
func SimulateWorkload(benchmark, bootstrap string, scheme Scheme, wordBits int) (SimStats, error) {
	b, ok := workloads.BenchmarkByName(benchmark)
	if !ok {
		return SimStats{}, fmt.Errorf("bitpacker: unknown benchmark %q (have %s)", benchmark, strings.Join(Workloads(), ", "))
	}
	var bs workloads.BootstrapSpec
	found := false
	for _, cand := range workloads.Bootstraps() {
		if strings.EqualFold(cand.Name, bootstrap) {
			bs, found = cand, true
		}
	}
	if !found {
		return SimStats{}, fmt.Errorf("bitpacker: unknown bootstrap %q (have %s)", bootstrap, strings.Join(BootstrapAlgorithms(), ", "))
	}
	prog := workloads.ProgramSpec(b, bs)
	sec := core.SecuritySpec{LogN: 16}
	hw := core.HWSpec{WordBits: wordBits}
	var chain *core.Chain
	var err error
	if scheme == BitPacker {
		chain, err = core.BuildBitPacker(prog, sec, hw, core.Options{})
	} else {
		chain, err = core.BuildRNSCKKS(prog, sec, hw, core.Options{})
	}
	if err != nil {
		return SimStats{}, err
	}
	cfg := accel.CraterLake(wordBits)
	stats, err := accel.NewSimulator(cfg, chain, 3).Run(workloads.BuildProgram(b, bs))
	if err != nil {
		return SimStats{}, err
	}
	return SimStats{
		Milliseconds:     stats.Seconds * 1e3,
		EnergyMJ:         stats.EnergyMJ(),
		LevelMgmtPercent: 100 * stats.LevelMgmtPJ / stats.TotalEnergyPJ(),
		HBMGigabytes:     stats.HBMBytes / 1e9,
		AreaMM2:          cfg.AreaMM2(),
		EDP:              stats.EDP(),
		MeanResidues:     chain.MeanR(),
	}, nil
}

// DescribeChain renders a modulus chain level by level.
func DescribeChain(ch *core.Chain) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s chain, N=%d, word=%d bits, %d levels\n",
		ch.Scheme, ch.N, ch.WordBits, ch.MaxLevel()+1)
	for l := ch.MaxLevel(); l >= 0; l-- {
		lv := ch.Levels[l]
		fmt.Fprintf(&sb, "  L%-3d R=%-3d logQ=%7.1f  scale=2^%-6.2f  overhead=%4.1f%%  (%d non-terminal + %d terminal)\n",
			l, lv.R(), lv.QBits, ratLog2Pub(lv), 100*ch.PackingOverhead(l), lv.NonTerminal, lv.Terminal)
	}
	fmt.Fprintf(&sb, "  special primes: %d\n", len(ch.Special))
	return sb.String()
}

func ratLog2Pub(lv *core.Level) float64 {
	// Scale bits via the level's own bookkeeping.
	return core.RatLog2(lv.Scale)
}

// ExperimentIDs lists the reproducible paper experiments.
func ExperimentIDs() []string {
	var out []string
	for _, r := range experiments.Runners() {
		out = append(out, r.ID)
	}
	return out
}

// RunExperiment regenerates one of the paper's tables/figures, rendering a
// text table to w. Quick mode trims sample counts and sweep grids.
func RunExperiment(id string, quick bool, w io.Writer) error {
	r, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("bitpacker: unknown experiment %q (have %s)", id, strings.Join(ExperimentIDs(), ", "))
	}
	res, err := r.Run(quick)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
