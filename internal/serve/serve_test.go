package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bitpacker"
	"bitpacker/internal/chaos"
)

// testServer builds a one-profile server for the HTTP tests.
func testServer(t *testing.T, mutate func(*ProfileConfig), jobDir string) (*Server, *profile) {
	t.Helper()
	cfg := ProfileConfig{
		Name: "p",
		Params: bitpacker.Config{
			Scheme:        bitpacker.BitPacker,
			LogN:          9,
			Levels:        3,
			ScaleBits:     40,
			QMinBits:      48,
			WordBits:      61,
			Seed:          13,
			KeyCacheBytes: 8 << 20,
		},
		Window:        32,
		MaxBatch:      8,
		FlushInterval: 2 * time.Millisecond,
		QueueDepth:    128,
		Packing:       true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(Options{Profiles: []ProfileConfig{cfg}, JobDir: jobDir})
	if err != nil {
		t.Fatal(err)
	}
	p, err := srv.reg.profile("p")
	if err != nil {
		t.Fatal(err)
	}
	return srv, p
}

// register registers a tenant over HTTP and returns its window start.
func register(t *testing.T, url, tenant string) RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{Profile: "p", Tenant: tenant})
	res, err := http.Post(url+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("register %s: status %d", tenant, res.StatusCode)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(res.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// evalHTTP performs one framed eval round trip, returning the HTTP
// status; on 200 the decoded result header and blob are returned too.
func evalHTTP(t *testing.T, url string, hdr EvalHeader, blob []byte) (int, *EvalResult, []byte) {
	t.Helper()
	var body bytes.Buffer
	hj, _ := json.Marshal(hdr)
	if err := WriteFrame(&body, FrameHeader, hj); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&body, FrameBlob, blob); err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url+"/v1/eval", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		return res.StatusCode, nil, nil
	}
	resHdrJSON, err := expectFrame(res.Body, FrameHeader, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var resHdr EvalResult
	if err := json.Unmarshal(resHdrJSON, &resHdr); err != nil {
		t.Fatal(err)
	}
	outBlob, err := expectFrame(res.Body, FrameBlob, DefaultMaxBlobBytes)
	if err != nil {
		t.Fatal(err)
	}
	return 200, &resHdr, outBlob
}

// TestServeHTTPEval: the full framed round trip — register, upload,
// evaluate, download, decrypt — lands the right values in [0, Window).
func TestServeHTTPEval(t *testing.T) {
	srv, p := testServer(t, nil, "")
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rr := register(t, ts.URL, "alice")
	vals := tenantValues(2, rr.Window)
	in := make([]float64, rr.Slots)
	copy(in[rr.WindowStart:], vals)
	ct, err := p.ctx.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.ctx.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	status, resHdr, outBlob := evalHTTP(t, ts.URL,
		EvalHeader{Profile: "p", Tenant: "alice", Op: OpScale, Arg: 3}, blob)
	if status != 200 {
		t.Fatalf("eval status %d", status)
	}
	out, err := p.ctx.UnmarshalCiphertext(outBlob)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level() != resHdr.Level {
		t.Fatalf("result header level %d, blob level %d", resHdr.Level, out.Level())
	}
	got, err := p.ctx.DecryptReal(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Abs(got[i]-3*v) > 1e-2 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], 3*v)
		}
	}

	// Unknown tenant and unknown op are client errors, not 5xx.
	if status, _, _ := evalHTTP(t, ts.URL, EvalHeader{Profile: "p", Tenant: "mallory", Op: OpScale}, blob); status != 404 {
		t.Fatalf("unknown tenant: status %d, want 404", status)
	}
	if status, _, _ := evalHTTP(t, ts.URL, EvalHeader{Profile: "p", Tenant: "alice", Op: "cube"}, blob); status != 400 {
		t.Fatalf("unknown op: status %d, want 400", status)
	}
	if status, _, _ := evalHTTP(t, ts.URL, EvalHeader{Profile: "p", Tenant: "alice", Op: OpScale}, []byte("junk")); status != 400 {
		t.Fatalf("junk blob: status %d, want 400", status)
	}
	if n := srv.FiveXX(); n != 0 {
		t.Fatalf("server wrote %d 5xx responses", n)
	}
}

// TestServeBackpressure: a full queue answers 429 with Retry-After
// instead of parking the request, and every accepted request still
// completes.
func TestServeBackpressure(t *testing.T) {
	srv, p := testServer(t, func(cfg *ProfileConfig) {
		cfg.QueueDepth = 1
		cfg.FlushInterval = 150 * time.Millisecond
	}, "")
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rr := register(t, ts.URL, "alice")
	in := make([]float64, rr.Slots)
	in[0] = 0.25
	ct, err := p.ctx.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.ctx.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	var mu sync.Mutex
	counts := map[int]int{}
	sawRetryAfter := false
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var body bytes.Buffer
			hj, _ := json.Marshal(EvalHeader{Profile: "p", Tenant: "alice", Op: OpNegate})
			WriteFrame(&body, FrameHeader, hj)
			WriteFrame(&body, FrameBlob, blob)
			res, err := http.Post(ts.URL+"/v1/eval", "application/octet-stream", &body)
			if err != nil {
				t.Error(err)
				return
			}
			defer res.Body.Close()
			mu.Lock()
			counts[res.StatusCode]++
			if res.StatusCode == 429 && res.Header.Get("Retry-After") != "" {
				sawRetryAfter = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[200]+counts[429] != n {
		t.Fatalf("unexpected statuses: %v", counts)
	}
	if counts[429] == 0 {
		t.Fatalf("depth-1 queue under %d concurrent requests produced no 429s: %v", n, counts)
	}
	if !sawRetryAfter {
		t.Fatal("429 responses carried no Retry-After header")
	}
	if n := srv.FiveXX(); n != 0 {
		t.Fatalf("server wrote %d 5xx responses", n)
	}
}

// TestJobLifecycle: submit a two-step job over HTTP, poll to done,
// fetch and decrypt the result.
func TestJobLifecycle(t *testing.T) {
	srv, p := testServer(t, nil, t.TempDir())
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	register(t, ts.URL, "alice")

	in := make([]float64, p.ctx.Slots())
	for i := range in {
		in[i] = 0.01 * float64(i%5)
	}
	ct, err := p.ctx.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.ctx.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	spec, _ := json.Marshal(JobSpec{Tenant: "alice", Profile: "p",
		Steps: []JobStep{{Op: OpScale, Arg: 2}, {Op: OpOffset, Arg: 0.5}}})
	WriteFrame(&body, FrameHeader, spec)
	WriteFrame(&body, FrameBlob, blob)
	res, err := http.Post(ts.URL+"/v1/job", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]string
	json.NewDecoder(res.Body).Decode(&sub)
	res.Body.Close()
	if res.StatusCode != 200 || sub["id"] == "" {
		t.Fatalf("job submit: status %d, body %v", res.StatusCode, sub)
	}

	rec := pollJob(t, ts.URL, sub["id"], 10*time.Second)
	if rec.State != JobDone {
		t.Fatalf("job ended %s: %s", rec.State, rec.Error)
	}
	if rec.StagesRun != 2 {
		t.Fatalf("job ran %d stages, want 2", rec.StagesRun)
	}

	res, err = http.Get(ts.URL + "/v1/job/" + sub["id"] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	outBlob, err := expectFrame(res.Body, FrameBlob, DefaultMaxBlobBytes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ctx.UnmarshalCiphertext(outBlob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ctx.DecryptReal(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		want := 2*in[i] + 0.5
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}

func pollJob(t *testing.T, url, id string, timeout time.Duration) jobRecord {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		res, err := http.Get(url + "/v1/job/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var rec jobRecord
		json.NewDecoder(res.Body).Decode(&rec)
		res.Body.Close()
		if rec.State != JobRunning {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after %v", id, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobResumeAfterRestart: a job directory left in the running state
// by a dead process (durable record + input blob, no result) is picked
// up and driven to completion by the next server's startup scan.
func TestJobResumeAfterRestart(t *testing.T) {
	jobDir := t.TempDir()

	// A context with the profile's exact parameters plays the dead
	// process: it wrote the job record and input, then vanished.
	cfg := bitpacker.Config{
		Scheme: bitpacker.BitPacker, LogN: 9, Levels: 3, ScaleBits: 40,
		QMinBits: 48, WordBits: 61, Seed: 13, KeyCacheBytes: 8 << 20,
	}
	writer, err := bitpacker.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, writer.Slots())
	for i := range in {
		in[i] = 0.02 * float64(i%3)
	}
	ct, err := writer.EncryptReal(in)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := writer.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(jobDir, "job-000042")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "input.bin"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, _ := json.Marshal(jobRecord{
		ID: "job-000042", Tenant: "alice", Profile: "p",
		Steps: []JobStep{{Op: OpNegate}}, State: JobRunning,
	})
	if err := os.WriteFile(filepath.Join(dir, "job.json"), rec, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, p := testServer(t, nil, jobDir)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	got := pollJob(t, ts.URL, "job-000042", 10*time.Second)
	if got.State != JobDone {
		t.Fatalf("resumed job ended %s: %s", got.State, got.Error)
	}
	outBlob, err := srv.jobs.Result("job-000042")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ctx.UnmarshalCiphertext(outBlob)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.ctx.DecryptReal(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if math.Abs(vals[i]-(-in[i])) > 1e-2 {
			t.Fatalf("slot %d: got %v, want %v", i, vals[i], -in[i])
		}
	}
}

// TestServeSmoke is the CI serve-smoke job: 100 mixed-tenant requests
// through the full HTTP stack while chaos bursts drop engine tasks
// under the evaluations. The op-level retry rung heals every burst, so
// the run must produce zero 5xx responses, every answer must decrypt to
// the right values, and shutdown must drain cleanly. Run under -race.
func TestServeSmoke(t *testing.T) {
	srv, p := testServer(t, func(cfg *ProfileConfig) {
		cfg.Params.Retry = &bitpacker.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond}
	}, "")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const tenants = 8
	const requests = 100
	w := p.cfg.Window
	type reqCase struct {
		hdr  EvalHeader
		blob []byte
		want []float64
	}
	cases := make([]reqCase, requests)
	windowStart := make([]int, tenants)
	for ti := 0; ti < tenants; ti++ {
		rr := register(t, ts.URL, fmt.Sprintf("tenant-%d", ti))
		windowStart[ti] = rr.WindowStart
	}
	ops := []string{OpSquare, OpScale, OpOffset, OpNegate}
	// Pre-encrypt everything before chaos goes live: the fault hook is
	// process-global and the clients' encryptions are not the system
	// under test.
	for i := range cases {
		ti := i % tenants
		op := ops[i%len(ops)]
		arg := 0.5 + 0.125*float64(i%4)
		vals := tenantValues(ti, w)
		in := make([]float64, p.ctx.Slots())
		copy(in[windowStart[ti]:], vals)
		ct, err := p.ctx.EncryptReal(in)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := p.ctx.MarshalCiphertext(ct)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = reqCase{
			hdr:  EvalHeader{Profile: "p", Tenant: fmt.Sprintf("tenant-%d", ti), Op: op, Arg: arg},
			blob: blob,
			want: expected(op, arg, vals),
		}
	}

	inj := chaos.New(99)
	_, restore := inj.Burst(0, 2)
	defer restore()

	results := make([][]float64, requests)
	statuses := make([]int, requests)
	var wg sync.WaitGroup
	for c := 0; c < tenants; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := client; i < requests; i += tenants {
				status, _, outBlob := evalHTTP(t, ts.URL, cases[i].hdr, cases[i].blob)
				statuses[i] = status
				if status != 200 {
					continue
				}
				out, err := p.ctx.UnmarshalCiphertext(outBlob)
				if err != nil {
					t.Error(err)
					continue
				}
				vals, err := p.ctx.DecryptReal(out)
				if err != nil {
					t.Error(err)
					continue
				}
				results[i] = vals
			}
		}(c)
	}
	// Re-arm the chaos burst a few times mid-run: transient fault
	// showers, each small enough for the retry budget to absorb.
	for k := 0; k < 4; k++ {
		time.Sleep(15 * time.Millisecond)
		restore()
		_, restore = inj.Burst(0, 2)
	}
	wg.Wait()
	restore()

	for i, status := range statuses {
		if status != 200 {
			t.Fatalf("request %d: status %d under chaos (want 200)", i, status)
		}
		for s, want := range cases[i].want {
			if math.Abs(results[i][s]-want) > 1e-2 {
				t.Fatalf("request %d slot %d: got %v, want %v", i, s, results[i][s], want)
			}
		}
	}
	if n := srv.FiveXX(); n != 0 {
		t.Fatalf("chaos leaked %d 5xx responses", n)
	}
	stats := p.sched.Stats()
	if stats.PackedBatches == 0 {
		t.Fatal("smoke run never packed a batch")
	}
	t.Logf("smoke: %d packed batches served %d requests, %d solo, %d fallbacks, max batch %d",
		stats.PackedBatches, stats.PackedReqs, stats.SoloEvals, stats.Fallbacks, stats.MaxBatch)

	// Clean shutdown: close the HTTP front end, then drain. Close must
	// return with nothing queued and no goroutine wedged (the -race run
	// doubles as the leak check).
	ts.Close()
	srv.Close()
}
