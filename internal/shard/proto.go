// Package shard supervises a fleet of disposable worker processes that
// execute a job's shards, and keeps the job alive under process-level
// faults: crashed workers are respawned with backoff behind a per-worker
// circuit breaker, hung workers are detected by heartbeat deadline and
// SIGKILLed, and a dead worker's leased shards are re-dispatched to
// survivors, who resume from the shard's last durable checkpoint. When
// no worker can be kept alive the supervisor degrades to in-process
// execution rather than failing the job.
//
// The package is deliberately generic: it moves opaque shard IDs, not
// ciphertexts. The caller supplies callbacks that validate a completed
// shard's output, heal a shard's input, and execute a shard in-process
// (degraded mode); the bitpacker root package wires those to the
// checkpoint DirStore + v2 serialization substrate in Context.RunSharded,
// and internal/shard/worker implements the worker side of the protocol.
// Keeping ciphertext types out of this package is what lets the root
// package import it without a cycle.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Environment keys the supervisor sets on spawned workers. A process
// started with EnvDir in its environment is a shard worker and must speak
// the stdin/stdout protocol below instead of running its normal main.
const (
	// EnvDir is the job exchange directory (holds job.json, in/, out/,
	// ckpt/, chaos/).
	EnvDir = "BITPACKER_SHARD_DIR"
	// EnvWorkerID is the supervisor's slot index for this worker.
	EnvWorkerID = "BITPACKER_SHARD_WORKER_ID"
	// EnvBeatMs is the heartbeat period in milliseconds.
	EnvBeatMs = "BITPACKER_SHARD_BEAT_MS"
	// EnvWorkerBin, when set, names the worker executable Context.RunSharded
	// spawns (checked before bpworker on PATH).
	EnvWorkerBin = "BITPACKER_BPWORKER"
)

// Message types of the line-delimited JSON protocol. The supervisor
// writes to the worker's stdin, the worker answers on stdout; stderr is
// captured for crash diagnostics. Heartbeats ride the same stdout stream
// so a single pipe closure is the complete death signal.
const (
	// Supervisor -> worker.
	MsgAssign = "assign" // run shard Msg.Shard
	MsgDrain  = "drain"  // finish nothing new, exit 0

	// Worker -> supervisor.
	MsgReady = "ready" // context built, accepting assignments
	MsgBeat  = "beat"  // liveness; Shard/Step report progress
	MsgDone  = "done"  // shard Msg.Shard output durably written
	MsgFail  = "fail"  // shard Msg.Shard failed with Class/Err
)

// Failure classes carried by MsgFail. The supervisor maps them back to
// the typed-error taxonomy: a canceled worker is never charged to the
// circuit breaker as a crash.
const (
	ClassCanceled = "canceled"
	ClassFault    = "fault"
)

// Msg is one protocol line.
type Msg struct {
	Type  string `json:"t"`
	Shard int    `json:"shard,omitempty"`
	Step  int    `json:"step,omitempty"`
	Class string `json:"class,omitempty"`
	Err   string `json:"err,omitempty"`
}

// CrashExitCode is the exit status a worker uses for an induced fatal
// fault (chaos injection); any abnormal exit is treated the same way.
const CrashExitCode = 13

// JobFile is the durable job description at Dir/job.json. Config and
// Program are opaque to this package (the root package marshals its
// Config and ShardStep program into them; the worker unmarshals both and
// rebuilds a bit-identical Context from the same seed).
type JobFile struct {
	Version int             `json:"version"`
	// Fingerprint hashes config+program+inputs; a mismatch against an
	// existing exchange directory means stale state from a different job
	// and everything under it is cleared before reuse.
	Fingerprint uint64          `json:"fingerprint"`
	Config      json.RawMessage `json:"config"`
	Program     json.RawMessage `json:"program"`
	// Shards lists the per-shard input sizes (shard i holds Shards[i]
	// ciphertexts); its length is the shard count.
	Shards []int `json:"shards"`
	// EngineWorkers caps each worker process's execution-engine
	// parallelism so W processes don't oversubscribe the host.
	EngineWorkers int `json:"engine_workers,omitempty"`
}

// JobFileVersion is the current JobFile schema version.
const JobFileVersion = 1

// Exchange-directory layout helpers. Inputs and outputs are
// pipeline.DirStore checkpoint files keyed by shard ID; ckpt/ holds one
// per-shard checkpoint directory the worker's pipeline resumes from.
func InDir(root string) string              { return filepath.Join(root, "in") }
func OutDir(root string) string             { return filepath.Join(root, "out") }
func CkptDir(root string, shard int) string { return filepath.Join(root, "ckpt", fmt.Sprintf("shard-%04d", shard)) }
func ChaosDir(root string) string           { return filepath.Join(root, "chaos") }

func jobFilePath(root string) string { return filepath.Join(root, "job.json") }

// WriteJobFile atomically persists the job description (temp file +
// rename, like every other durable artifact in the exchange directory).
func WriteJobFile(root string, jf JobFile) error {
	data, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: marshal job file: %w", err)
	}
	tmp := jobFilePath(root) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: write job file: %w", err)
	}
	if err := os.Rename(tmp, jobFilePath(root)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: publish job file: %w", err)
	}
	return nil
}

// ReadJobFile loads Dir/job.json. A missing file is reported as
// os.ErrNotExist for the caller to distinguish from corruption.
func ReadJobFile(root string) (JobFile, error) {
	data, err := os.ReadFile(jobFilePath(root))
	if err != nil {
		return JobFile{}, err
	}
	var jf JobFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return JobFile{}, fmt.Errorf("shard: job file: %w", err)
	}
	if jf.Version != JobFileVersion {
		return JobFile{}, fmt.Errorf("shard: job file version %d (want %d)", jf.Version, JobFileVersion)
	}
	return jf, nil
}
