package ring

import (
	"math/big"
	"math/rand/v2"
	"testing"

	"bitpacker/internal/nt"
)

func testCtx(t testing.TB, n int) *Context {
	t.Helper()
	ctx, err := NewContext(n)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func testModuli(t testing.TB, n int, bits uint, count int) []uint64 {
	t.Helper()
	ps := nt.NTTPrimesBelow(uint64(1)<<bits, uint64(2*n), count)
	if len(ps) != count {
		t.Fatalf("not enough primes")
	}
	return ps
}

func randPoly(ctx *Context, moduli []uint64, rng *rand.Rand) *Poly {
	p := NewPoly(ctx, moduli)
	for i, q := range p.Moduli {
		for k := range p.Coeffs[i] {
			p.Coeffs[i][k] = rng.Uint64N(q)
		}
	}
	return p
}

func TestAddSubNeg(t *testing.T) {
	ctx := testCtx(t, 32)
	moduli := testModuli(t, 32, 40, 3)
	rng := rand.New(rand.NewPCG(1, 1))
	a := randPoly(ctx, moduli, rng)
	b := randPoly(ctx, moduli, rng)
	sum := NewPoly(ctx, moduli)
	sum.Add(a, b)
	diff := NewPoly(ctx, moduli)
	diff.Sub(sum, b)
	if !diff.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	neg := NewPoly(ctx, moduli)
	neg.Neg(a)
	zero := NewPoly(ctx, moduli)
	sum.Add(a, neg)
	if !sum.Equal(zero) {
		t.Fatal("a + (-a) != 0")
	}
}

func TestNTTRoundTripPoly(t *testing.T) {
	ctx := testCtx(t, 64)
	moduli := testModuli(t, 64, 45, 4)
	rng := rand.New(rand.NewPCG(2, 2))
	p := randPoly(ctx, moduli, rng)
	orig := p.Copy()
	p.NTT()
	if !p.IsNTT {
		t.Fatal("IsNTT not set")
	}
	p.NTT() // no-op
	p.INTT()
	p.INTT() // no-op
	if !p.Equal(orig) {
		t.Fatal("NTT roundtrip mismatch")
	}
}

func TestMulCoeffsMatchesBigPolyMul(t *testing.T) {
	n := 16
	ctx := testCtx(t, n)
	moduli := testModuli(t, n, 50, 3)
	rng := rand.New(rand.NewPCG(3, 3))
	a := randPoly(ctx, moduli, rng)
	b := randPoly(ctx, moduli, rng)
	basis := a.Basis()

	// Reference: negacyclic schoolbook over big.Int mod Q.
	av := make([]*big.Int, n)
	bv := make([]*big.Int, n)
	for k := 0; k < n; k++ {
		av[k] = a.CoeffBig(basis, k)
		bv[k] = b.CoeffBig(basis, k)
	}
	want := make([]*big.Int, n)
	for k := range want {
		want[k] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := new(big.Int).Mul(av[i], bv[j])
			if i+j < n {
				want[i+j].Add(want[i+j], p)
			} else {
				want[i+j-n].Sub(want[i+j-n], p)
			}
		}
	}
	a.NTT()
	b.NTT()
	prod := NewPoly(ctx, moduli)
	prod.IsNTT = true
	prod.MulCoeffs(a, b)
	prod.INTT()
	for k := 0; k < n; k++ {
		got := prod.CoeffBig(basis, k)
		w := new(big.Int).Mod(want[k], basis.Q)
		g := new(big.Int).Mod(got, basis.Q)
		if g.Cmp(w) != 0 {
			t.Fatalf("coeff %d: got %v want %v", k, g, w)
		}
	}
}

func TestMulScalarBig(t *testing.T) {
	ctx := testCtx(t, 16)
	moduli := testModuli(t, 16, 40, 2)
	rng := rand.New(rand.NewPCG(4, 4))
	a := randPoly(ctx, moduli, rng)
	basis := a.Basis()
	c := big.NewInt(-123456789)
	out := NewPoly(ctx, moduli)
	out.MulScalarBig(a, c)
	for k := 0; k < 16; k++ {
		want := new(big.Int).Mul(a.CoeffBig(basis, k), c)
		want.Mod(want, basis.Q)
		got := new(big.Int).Mod(out.CoeffBig(basis, k), basis.Q)
		if got.Cmp(want) != 0 {
			t.Fatalf("coeff %d mismatch", k)
		}
	}
}

func TestScaleUpScaleDownRoundTrip(t *testing.T) {
	n := 16
	ctx := testCtx(t, n)
	moduli := testModuli(t, n, 45, 3)
	extra := testModuli(t, n, 40, 2)
	rng := rand.New(rand.NewPCG(5, 5))
	p := randPoly(ctx, moduli, rng)
	basis := p.Basis()

	up := p.ScaleUp(extra)
	if up.R() != 5 {
		t.Fatalf("scaleUp residue count: %d", up.R())
	}
	// Value check: up = p * K mod (Q*K).
	upBasis := up.Basis()
	K := big.NewInt(1)
	for _, q := range extra {
		K.Mul(K, new(big.Int).SetUint64(q))
	}
	for k := 0; k < n; k++ {
		want := new(big.Int).Mul(p.CoeffBig(basis, k), K)
		want.Mod(want, upBasis.Q)
		got := new(big.Int).Mod(up.CoeffBig(upBasis, k), upBasis.Q)
		if got.Cmp(want) != 0 {
			t.Fatalf("scaleUp coeff %d mismatch", k)
		}
	}

	// Scale back down by the added moduli: must recover p exactly up to
	// the < k floor error.
	params := NewScaleDownParams(up.Moduli, []int{3, 4})
	down := up.ScaleDown(params)
	if down.R() != 3 {
		t.Fatalf("scaleDown residue count: %d", down.R())
	}
	for k := 0; k < n; k++ {
		orig := p.CoeffBig(basis, k)
		got := down.CoeffBig(basis, k)
		diff := new(big.Int).Sub(orig, got)
		diff.Mod(diff, basis.Q)
		if diff.Cmp(big.NewInt(2)) >= 0 {
			t.Fatalf("coeff %d: roundtrip error %v", k, diff)
		}
	}
}

func TestScaleDownRequiresCoeffDomain(t *testing.T) {
	ctx := testCtx(t, 16)
	moduli := testModuli(t, 16, 45, 3)
	p := NewPoly(ctx, moduli)
	p.IsNTT = true
	params := NewScaleDownParams(moduli, []int{2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.ScaleDown(params)
}

func TestAutomorphismComposition(t *testing.T) {
	n := 32
	ctx := testCtx(t, n)
	moduli := testModuli(t, n, 40, 2)
	rng := rand.New(rand.NewPCG(6, 6))
	p := randPoly(ctx, moduli, rng)

	if !p.Automorphism(1).Equal(p) {
		t.Fatal("φ_1 is not identity")
	}
	k1 := GaloisElementForRotation(1, n)
	k2 := GaloisElementForRotation(2, n)
	k3 := GaloisElementForRotation(3, n)
	lhs := p.Automorphism(k1).Automorphism(k2)
	rhs := p.Automorphism(k1 * k2 % uint64(2*n))
	if !lhs.Equal(rhs) {
		t.Fatal("φ_k1 ∘ φ_k2 != φ_k1k2")
	}
	if k1*k2%uint64(2*n) != k3 {
		t.Fatal("rotation group law broken")
	}
}

func TestAutomorphismNegacyclicSign(t *testing.T) {
	// For p(X) = X, φ_k(p) = X^k; with k = 2N-1 (conjugation),
	// X^{2N-1} = -X^{N-1} * X^N / X^N ... directly: X^{2N-1} mod X^N+1 = -X^{N-1}.
	n := 16
	ctx := testCtx(t, n)
	moduli := testModuli(t, n, 30, 1)
	p := NewPoly(ctx, moduli)
	p.Coeffs[0][1] = 1 // p = X
	out := p.Automorphism(GaloisElementForConjugation(n))
	q := moduli[0]
	for k := 0; k < n; k++ {
		want := uint64(0)
		if k == n-1 {
			want = q - 1
		}
		if out.Coeffs[0][k] != want {
			t.Fatalf("coeff %d: got %d want %d", k, out.Coeffs[0][k], want)
		}
	}
}

func TestSamplerDistributions(t *testing.T) {
	n := 1024
	ctx := testCtx(t, n)
	moduli := testModuli(t, n, 40, 2)
	s := NewSampler(ctx, 7, 7)

	u := s.UniformPoly(moduli)
	if !u.IsNTT {
		t.Fatal("uniform should be tagged NTT")
	}
	for i, q := range u.Moduli {
		for _, v := range u.Coeffs[i] {
			if v >= q {
				t.Fatal("uniform out of range")
			}
		}
	}

	tern := s.TernaryPoly(moduli)
	basis := tern.Basis()
	counts := map[int64]int{}
	for k := 0; k < n; k++ {
		v := tern.CoeffBig(basis, k).Int64()
		if v < -1 || v > 1 {
			t.Fatalf("ternary coeff %d out of range: %d", k, v)
		}
		counts[v]++
	}
	for v := int64(-1); v <= 1; v++ {
		if counts[v] < n/6 {
			t.Fatalf("ternary value %d too rare: %d", v, counts[v])
		}
	}

	zo := s.ZOPoly(moduli, 0.5)
	zeros := 0
	for k := 0; k < n; k++ {
		v := zo.CoeffBig(basis, k).Int64()
		if v == 0 {
			zeros++
		}
	}
	if zeros < n/3 || zeros > 2*n/3 {
		t.Fatalf("ZO(0.5) zero fraction off: %d/%d", zeros, n)
	}

	g := s.GaussianPoly(moduli, 3.2)
	for k := 0; k < n; k++ {
		v := g.CoeffBig(basis, k).Int64()
		if v < -20 || v > 20 {
			t.Fatalf("gaussian coeff out of 6σ bound: %d", v)
		}
	}
}

func TestDropResidues(t *testing.T) {
	ctx := testCtx(t, 16)
	moduli := testModuli(t, 16, 40, 4)
	rng := rand.New(rand.NewPCG(8, 8))
	p := randPoly(ctx, moduli, rng)
	out := p.DropResidues(map[int]bool{1: true, 3: true})
	if out.R() != 2 || out.Moduli[0] != moduli[0] || out.Moduli[1] != moduli[2] {
		t.Fatalf("DropResidues wrong moduli: %v", out.Moduli)
	}
	for k := 0; k < 16; k++ {
		if out.Coeffs[0][k] != p.Coeffs[0][k] || out.Coeffs[1][k] != p.Coeffs[2][k] {
			t.Fatal("DropResidues wrong coefficients")
		}
	}
}

func TestNewContextErrors(t *testing.T) {
	if _, err := NewContext(100); err == nil {
		t.Fatal("non power of two accepted")
	}
	if _, err := NewContext(0); err == nil {
		t.Fatal("zero accepted")
	}
}
