package ckks

import (
	"errors"
	"math/rand/v2"
	"testing"

	"bitpacker/internal/core"
	"bitpacker/internal/fherr"
)

// newRRNSSetup is newTestSetup over a chain carrying the RRNS spare.
func newRRNSSetup(t testing.TB, scheme core.Scheme, levels int, scaleBits float64, w, logN, dnum int, rotations []int) *testSetup {
	t.Helper()
	targets := make([]float64, levels+1)
	for i := range targets {
		targets[i] = scaleBits
	}
	prog := core.ProgramSpec{MaxLevel: levels, TargetScaleBits: targets, QMinBits: scaleBits + 20}
	params, err := BuildParametersExt(scheme, prog, core.SecuritySpec{LogN: logN}, core.HWSpec{WordBits: w}, dnum, 3.2, true)
	if err != nil {
		t.Fatal(err)
	}
	if params.SpareModulus() == 0 {
		t.Fatal("redundant-residue parameters have no spare modulus")
	}
	kg := NewKeyGenerator(params, 11, 22)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := &EvaluationKeySet{
		Relin:  kg.GenRelinKey(sk),
		Galois: kg.GenRotationKeys(sk, rotations, true),
	}
	return &testSetup{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		encr:   NewEncryptor(params, pk, 33, 44),
		dec:    NewDecryptor(params, sk),
		ev:     NewEvaluator(params, keys),
	}
}

// TestRRNSCleanPath: with the spare channel on, a multiply-rescale-add
// circuit computes the same values as ever, the fresh ciphertexts carry
// seeded spares, and every rescale's cross-check passes silently.
func TestRRNSCleanPath(t *testing.T) {
	for _, scheme := range []core.Scheme{core.RNSCKKS, core.BitPacker} {
		s := newRRNSSetup(t, scheme, 3, 40, 61, 10, 8, nil)
		s.ev.SetInvariantChecks(true)
		rng := rand.New(rand.NewPCG(10, 20))
		a := randomValues(s.params.Slots(), rng)
		b := randomValues(s.params.Slots(), rng)
		ca := s.encryptValues(a)
		cb := s.encryptValues(b)
		if ca.SpareDepth != 1 {
			t.Fatalf("%v: fresh ciphertext spare depth = %d, want 1", scheme, ca.SpareDepth)
		}

		sum := s.ev.MustAdd(ca, cb)
		if sum.SpareDepth != 2 {
			t.Fatalf("%v: add spare depth = %d, want 2", scheme, sum.SpareDepth)
		}
		prod := s.ev.MustRescale(s.ev.MustMulRelin(ca, cb))
		if prod.SpareDepth != 1 {
			t.Fatalf("%v: rescale output spare depth = %d, want 1 (reseeded)", scheme, prod.SpareDepth)
		}
		out := s.ev.MustAdd(prod, s.ev.MustAdjust(sum))

		got := s.dec.MustDecryptAndDecode(out, s.enc)
		want := make([]complex128, len(a))
		for i := range a {
			want[i] = a[i]*b[i] + a[i] + b[i]
		}
		if e := maxErr(got, want); e > 1e-4 {
			t.Fatalf("%v: clean-path error %g", scheme, e)
		}
	}
}

// TestRRNSSpareAlgebra drives the tracked ops (add, sub, neg, scalar
// mul) and then forces the rescale cross-check to run on the widened
// window: any bookkeeping error in the wrap-count algebra would trip it.
func TestRRNSSpareAlgebra(t *testing.T) {
	s := newRRNSSetup(t, core.BitPacker, 2, 40, 61, 9, 8, nil)
	rng := rand.New(rand.NewPCG(30, 40))
	a := randomValues(s.params.Slots(), rng)
	b := randomValues(s.params.Slots(), rng)
	ca := s.encryptValues(a)
	cb := s.encryptValues(b)

	x := s.ev.MustAdd(ca, cb)            // depth 2
	x = s.ev.MustSub(x, cb)              // depth 3
	x = s.ev.MustNeg(x)                  // depth 4
	y := s.ev.MustMulScalarInt(ca, -3)   // depth 4
	x = s.ev.MustAdd(x, y)               // depth 8
	if x.SpareDepth != 8 {
		t.Fatalf("spare depth = %d, want 8", x.SpareDepth)
	}
	// Adjust runs Rescale underneath: the cross-check scans the m-window.
	out := s.ev.MustAdjust(x)
	if out.SpareDepth != 1 {
		t.Fatalf("adjust output spare depth = %d, want 1", out.SpareDepth)
	}
	got := s.dec.MustDecryptAndDecode(out, s.enc)
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = -(a[i] + b[i] - b[i]) - 3*a[i] // = -4a
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("algebra error %g", e)
	}

	// Past the window cap the channel goes stale instead of lying.
	z := s.encryptValues(a)
	for i := 0; i < 5; i++ {
		z = s.ev.MustAdd(z, z)
	}
	if z.SpareDepth != 0 {
		t.Fatalf("deep add chain spare depth = %d, want 0 (stale)", z.SpareDepth)
	}
}

// TestRRNSRepairsCorruptResidue is the heart of the ladder's first rung:
// a bit-flipped residue word (the chaos injector's fault signature) is
// repaired in place by the next operation, and the final decryption
// matches the fault-free run exactly.
func TestRRNSRepairsCorruptResidue(t *testing.T) {
	for _, scheme := range []core.Scheme{core.RNSCKKS, core.BitPacker} {
		s := newRRNSSetup(t, scheme, 3, 40, 61, 10, 8, nil)
		s.ev.SetInvariantChecks(true)
		rng := rand.New(rand.NewPCG(50, 60))
		a := randomValues(s.params.Slots(), rng)
		b := randomValues(s.params.Slots(), rng)

		// Encrypt once: the encryptor's randomness stream is stateful, so
		// exact clean-vs-healed comparison needs identical inputs.
		ca0 := s.encryptValues(a)
		cb0 := s.encryptValues(b)
		run := func(corrupt func(*Ciphertext)) []complex128 {
			ca := ca0.CopyNew()
			cb := cb0.CopyNew()
			if corrupt != nil {
				corrupt(ca)
			}
			out := s.ev.MustRescale(s.ev.MustMulRelin(ca, cb))
			return s.dec.MustDecryptAndDecode(out, s.enc)
		}

		clean := run(nil)
		frng := rand.New(rand.NewPCG(70, 80))
		for trial := 0; trial < 4; trial++ {
			healed := run(func(ct *Ciphertext) {
				polys := [...][][]uint64{ct.C0.Coeffs, ct.C1.Coeffs}
				pi := frng.IntN(2)
				ri := frng.IntN(len(polys[pi]))
				ci := frng.IntN(len(polys[pi][ri]))
				polys[pi][ri][ci] ^= 1 << 63
			})
			if e := maxErr(healed, clean); e != 0 {
				t.Fatalf("%v trial %d: repaired run differs from fault-free run by %g", scheme, trial, e)
			}
		}
	}
}

// TestRRNSCorruptSpareDropsChannel: a fault in the check channel itself
// must not fail the computation — the channel is dropped and the values
// remain correct.
func TestRRNSCorruptSpareDropsChannel(t *testing.T) {
	s := newRRNSSetup(t, core.BitPacker, 2, 40, 61, 9, 8, nil)
	rng := rand.New(rand.NewPCG(90, 100))
	a := randomValues(s.params.Slots(), rng)
	ca := s.encryptValues(a)
	ca.Spare0[3] ^= 1 << 63
	out := s.ev.MustAdd(ca, ca)
	if ca.SpareDepth != 0 {
		t.Fatal("corrupted spare channel not dropped")
	}
	if out.SpareDepth != 0 {
		t.Fatal("output inherited a dropped channel as fresh")
	}
	got := s.dec.MustDecryptAndDecode(out, s.enc)
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = 2 * a[i]
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("error %g after dropping spare", e)
	}
}

// TestRRNSDetectsInRangeTamper: corruption that stays inside [0, q) is
// invisible to the range scan but must be caught by the rescale
// cross-check against the spare channel.
func TestRRNSDetectsInRangeTamper(t *testing.T) {
	for _, scheme := range []core.Scheme{core.RNSCKKS, core.BitPacker} {
		s := newRRNSSetup(t, scheme, 2, 40, 61, 9, 8, nil)
		rng := rand.New(rand.NewPCG(110, 120))
		a := randomValues(s.params.Slots(), rng)
		ca := s.encryptValues(a)
		// In-range tamper: add 1 mod q to one live residue word.
		q := ca.C0.Moduli[0]
		ca.C0.Coeffs[0][5] = (ca.C0.Coeffs[0][5] + 1) % q
		_, err := s.ev.Rescale(s.ev.MustMulScalarInt(ca, 1))
		if err == nil {
			t.Fatalf("%v: in-range corruption slipped past the RRNS cross-check", scheme)
		}
		if !errors.Is(err, fherr.ErrInvariant) {
			t.Fatalf("%v: RRNS mismatch not classified as ErrInvariant: %v", scheme, err)
		}
	}
}

// TestRRNSUnrepairable: multi-residue corruption and corruption with a
// stale spare are detected (not silently accepted) and classified for
// the retry/checkpoint rungs.
func TestRRNSUnrepairable(t *testing.T) {
	s := newRRNSSetup(t, core.BitPacker, 2, 40, 61, 9, 8, nil)
	rng := rand.New(rand.NewPCG(130, 140))
	a := randomValues(s.params.Slots(), rng)

	// Two corrupted residues of the same polynomial.
	ca := s.encryptValues(a)
	ca.C0.Coeffs[0][1] ^= 1 << 63
	ca.C0.Coeffs[1][2] ^= 1 << 63
	if _, err := s.ev.Add(ca, ca); !errors.Is(err, fherr.ErrInvariant) {
		t.Fatalf("multi-residue corruption: got %v, want ErrInvariant", err)
	}

	// Corruption while the spare is stale (cleared by a plaintext op).
	cb := s.encryptValues(a)
	cb.clearSpare()
	cb.C1.Coeffs[0][7] ^= 1 << 63
	if _, err := s.ev.Add(cb, cb); !errors.Is(err, fherr.ErrInvariant) {
		t.Fatalf("stale-spare corruption: got %v, want ErrInvariant", err)
	}
}

// TestRRNSSerializationReseed: spares are not serialized; a deserialized
// ciphertext reseeds explicitly and keeps verifying.
func TestRRNSSerializationReseed(t *testing.T) {
	s := newRRNSSetup(t, core.BitPacker, 2, 40, 61, 9, 8, nil)
	rng := rand.New(rand.NewPCG(150, 160))
	a := randomValues(s.params.Slots(), rng)
	ca := s.encryptValues(a)
	blob, err := ca.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCiphertext(s.params, blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.SpareDepth != 0 {
		t.Fatal("deserialized ciphertext claims a spare it cannot have")
	}
	back.SeedSpare(s.params)
	if back.SpareDepth != 1 {
		t.Fatal("SeedSpare did not seed")
	}
	// The reseeded channel verifies at the next rescale.
	out := s.ev.MustAdjust(back)
	got := s.dec.MustDecryptAndDecode(out, s.enc)
	if e := maxErr(got, a); e > 1e-4 {
		t.Fatalf("error %g after reseed", e)
	}
}
